//! Schedulable workload threads.
//!
//! A [`Workload`] is a state machine the machine drives: each call to
//! [`Workload::next`] yields one [`Step`] — run a compute trace, perform a
//! blocking channel operation, wait for a point in simulated time, or
//! finish. This mirrors how the paper's multithreaded XML server behaves
//! (POSIX threads alternating socket I/O and message processing, §3.2.1)
//! and is exactly enough to express netperf's producer/consumer pairs.

use crate::sync::{ChannelId, Msg};
use aon_trace::trace::{Binding, Trace};
use std::sync::Arc;

/// Identifies a thread within a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u32);

/// What a workload wants to do next.
pub enum Step {
    /// Execute a compute trace with the given slot bindings.
    Run {
        /// The recorded trace to replay.
        trace: Arc<Trace>,
        /// Slot → base-address bindings for this replay.
        binding: Binding,
    },
    /// Send a message into a channel (blocks while full).
    Send {
        /// Target channel.
        chan: ChannelId,
        /// The message.
        msg: Msg,
    },
    /// Receive a message from a channel (blocks while empty). The message
    /// is delivered in [`WorkloadCtx::last_recv`] on the following call.
    Recv {
        /// Source channel.
        chan: ChannelId,
    },
    /// Do nothing until the given absolute cycle (rate-limited sources).
    WaitUntil(u64),
    /// A NIC DMA transfer: occupies the bus and keeps caches coherent
    /// (writes invalidate, reads snoop out dirty lines). The CPU pays only
    /// a descriptor-setup cost; the transfer itself is asynchronous.
    Dma {
        /// True for device-to-memory (receive), false for memory-to-device
        /// (transmit).
        write: bool,
        /// Start address of the transfer.
        addr: aon_trace::VAddr,
        /// Transfer length in bytes.
        len: u32,
    },
    /// Thread is finished.
    Done,
}

/// Context handed to [`Workload::next`].
#[derive(Debug, Default, Clone, Copy)]
pub struct WorkloadCtx {
    /// Current simulated time (cycles) on this thread's CPU.
    pub now: u64,
    /// The message delivered by the previous `Recv` step, if any.
    pub last_recv: Option<Msg>,
    /// This thread's id.
    pub thread: ThreadId,
    /// Set by the workload: completed work units this step (the machine
    /// accumulates them for throughput reporting).
    pub complete_units: u32,
    /// Set by the workload: completed payload bytes this step.
    pub complete_bytes: u64,
}

impl Default for ThreadId {
    fn default() -> Self {
        ThreadId(u32::MAX)
    }
}

/// A schedulable workload.
pub trait Workload: Send {
    /// Produce the next step. `ctx.last_recv` carries the result of a
    /// preceding `Recv`; the workload may set `ctx.complete_units` /
    /// `ctx.complete_bytes` to report progress.
    fn next(&mut self, ctx: &mut WorkloadCtx) -> Step;

    /// Diagnostic label.
    fn label(&self) -> &str {
        "workload"
    }
}

/// A trivial workload that replays one trace a fixed number of times
/// (useful for calibration and tests).
pub struct LoopWorkload {
    trace: Arc<Trace>,
    binding: Binding,
    remaining: u64,
}

impl LoopWorkload {
    /// Replay `trace` `iterations` times with a fixed binding.
    pub fn new(trace: Trace, binding: Binding, iterations: u64) -> Self {
        LoopWorkload { trace: Arc::new(trace), binding, remaining: iterations }
    }
}

impl Workload for LoopWorkload {
    fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
        if self.remaining == 0 {
            return Step::Done;
        }
        self.remaining -= 1;
        ctx.complete_units = 1;
        Step::Run { trace: Arc::clone(&self.trace), binding: self.binding }
    }

    fn label(&self) -> &str {
        "loop"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::{Addr, Op, RegionSlot};

    #[test]
    fn loop_workload_counts_down() {
        let mut t = Trace::default();
        t.push(Op::Alu(10));
        t.push(Op::Load { addr: Addr::new(RegionSlot::MSG, 0), size: 8 });
        let mut w = LoopWorkload::new(t, Binding::new(), 2);
        let mut ctx = WorkloadCtx::default();
        assert!(matches!(w.next(&mut ctx), Step::Run { .. }));
        assert_eq!(ctx.complete_units, 1);
        assert!(matches!(w.next(&mut ctx), Step::Run { .. }));
        assert!(matches!(w.next(&mut ctx), Step::Done));
    }
}
