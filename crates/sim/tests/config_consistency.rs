//! The five paper platforms expose consistent, deterministic topology
//! data (machine descriptions are recorded next to experiment results, so
//! they must be stable from call to call and distinguishable by name).

use aon_sim::config::Platform;

#[test]
fn configs_are_deterministic() {
    for p in Platform::ALL {
        assert_eq!(p.config(), p.config(), "{p} config must be stable across calls");
    }
}

#[test]
fn platform_notations_are_unique() {
    let notations: Vec<&str> = Platform::ALL.iter().map(|p| p.notation()).collect();
    for (i, a) in notations.iter().enumerate() {
        assert!(!a.is_empty());
        for b in &notations[i + 1..] {
            assert_ne!(a, b, "platform notations must distinguish the configs");
        }
    }
}

#[test]
fn core_and_package_maps_are_consistent() {
    for p in Platform::ALL {
        let cfg = p.config();
        for cpu in 0..cfg.logical_cpus() {
            assert!(cfg.core_of(cpu) < cfg.physical_cores());
            assert!(cfg.package_of(cpu) < cfg.packages);
            assert!(cfg.l2_domain_of(cpu) < cfg.l2_domains());
        }
    }
}

#[test]
fn xeon_is_faster_clocked_but_smaller_cached() {
    let pm = Platform::OneCorePentiumM.config();
    let xe = Platform::OneLogicalXeon.config();
    assert!(xe.cpu_mhz > pm.cpu_mhz);
    assert!(xe.l2.size < pm.l2.size);
    assert!(xe.arch.l1d.size < pm.arch.l1d.size);
    assert!(xe.arch.mispredict_penalty > pm.arch.mispredict_penalty);
    assert!(xe.dram_cycles() > pm.dram_cycles(), "same DRAM is more cycles at higher clock");
}
