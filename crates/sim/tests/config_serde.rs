//! Machine descriptions serialize (experiment configs are recorded next to
//! results) and the five platforms expose consistent topology data.

use aon_sim::config::{MachineConfig, Platform};

#[test]
fn configs_roundtrip_through_json() {
    for p in Platform::ALL {
        let cfg = p.config();
        let json = serde_json::to_string(&cfg).expect("serializes");
        // `name` is &'static str, so deserialization borrows from the JSON
        // text; leak it (test-only) to satisfy the lifetime.
        let json: &'static str = Box::leak(json.into_boxed_str());
        let back: MachineConfig = serde_json::from_str(json).expect("deserializes");
        assert_eq!(cfg, back, "{p} config must round-trip");
    }
}

#[test]
fn platform_json_is_stable() {
    let json = serde_json::to_string(&Platform::TwoLogicalXeon).unwrap();
    let back: Platform = serde_json::from_str(&json).unwrap();
    assert_eq!(back, Platform::TwoLogicalXeon);
}

#[test]
fn core_and_package_maps_are_consistent() {
    for p in Platform::ALL {
        let cfg = p.config();
        for cpu in 0..cfg.logical_cpus() {
            assert!(cfg.core_of(cpu) < cfg.physical_cores());
            assert!(cfg.package_of(cpu) < cfg.packages);
            assert!(cfg.l2_domain_of(cpu) < cfg.l2_domains());
        }
    }
}

#[test]
fn xeon_is_faster_clocked_but_smaller_cached() {
    let pm = Platform::OneCorePentiumM.config();
    let xe = Platform::OneLogicalXeon.config();
    assert!(xe.cpu_mhz > pm.cpu_mhz);
    assert!(xe.l2.size < pm.l2.size);
    assert!(xe.arch.l1d.size < pm.arch.l1d.size);
    assert!(xe.arch.mispredict_penalty > pm.arch.mispredict_penalty);
    assert!(xe.dram_cycles() > pm.dram_cycles(), "same DRAM is more cycles at higher clock");
}
