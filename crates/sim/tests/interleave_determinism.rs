//! Deterministic-interleaving stress test for the scheduler.
//!
//! Every scheduling decision in [`aon_sim::machine`] — which ready thread
//! to place, which idle CPU receives it, which blocked thread a channel
//! operation wakes — is defined as a (key, index)-lexicographic minimum,
//! so the simulation must not depend on the order in which the scheduler's
//! selection loops happen to examine candidates. This test permutes that
//! scan order across many seeds (`Machine::set_scan_permutation`) over a
//! contended multi-stage pipeline that exercises `sync.rs` blocking sends
//! and receives, `thread.rs` timed waits, and CPU oversubscription, and
//! asserts that every permutation produces byte-identical counters.

use aon_sim::config::Platform;
use aon_sim::counters::PerfCounters;
use aon_sim::machine::Machine;
use aon_sim::sync::{ChannelConfig, ChannelId, Msg};
use aon_sim::thread::{Step, Workload, WorkloadCtx};
use aon_trace::trace::{Binding, Trace};
use aon_trace::{Addr, Op, RegionSlot, VAddr};
use std::sync::Arc;

/// Produces `n` messages into a channel, computing between sends.
struct Producer {
    chan: ChannelId,
    trace: Arc<Trace>,
    n: u32,
    sent: bool,
}

impl Workload for Producer {
    fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
        if self.n == 0 {
            return Step::Done;
        }
        if self.sent {
            self.sent = false;
            return Step::Run { trace: Arc::clone(&self.trace), binding: Binding::new() };
        }
        self.n -= 1;
        self.sent = true;
        ctx.complete_units = 1;
        Step::Send { chan: self.chan, msg: Msg { bytes: 512, tag: u64::from(self.n) } }
    }
}

/// Receives from one channel, computes, and forwards to another.
struct Transformer {
    from: ChannelId,
    to: ChannelId,
    trace: Arc<Trace>,
}

impl Workload for Transformer {
    fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
        if let Some(msg) = ctx.last_recv.take() {
            return Step::Send { chan: self.to, msg };
        }
        if ctx.now.is_multiple_of(3) {
            // Occasionally compute before the next receive so the issue
            // timelines and caches see traffic between blocking points.
            return Step::Run { trace: Arc::clone(&self.trace), binding: Binding::new() };
        }
        Step::Recv { chan: self.from }
    }
}

/// Drains the final channel, pacing itself with timed waits.
struct Consumer {
    chan: ChannelId,
    pace: u64,
    next_wake: u64,
}

impl Workload for Consumer {
    fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
        if let Some(msg) = ctx.last_recv.take() {
            ctx.complete_units = 1;
            ctx.complete_bytes = u64::from(msg.bytes);
            self.next_wake = ctx.now + self.pace;
            return Step::WaitUntil(self.next_wake);
        }
        Step::Recv { chan: self.chan }
    }
}

fn compute_trace(label: &str, alu: u16) -> Arc<Trace> {
    let mut t = Trace::with_label(label);
    t.push(Op::Alu(alu));
    t.push(Op::Load { addr: Addr::new(RegionSlot::MSG, 0), size: 64 });
    t.push(Op::Branch { site: 7, taken: true });
    t.push(Op::Store { addr: Addr::new(RegionSlot::MSG, 64), size: 64 });
    t.push(Op::Branch { site: 9, taken: false });
    Arc::new(t)
}

/// Build the contended pipeline: 3 producers -> stage1 -> 3 transformers
/// -> stage2 -> 2 consumers, oversubscribing every platform's CPUs.
fn build(machine: &mut Machine) {
    let stage1 = machine.add_channel(ChannelConfig::bounded(2_048, VAddr(0x6000_0000)));
    let stage2 = machine.add_channel(ChannelConfig::bounded(1_024, VAddr(0x7000_0000)));
    for i in 0..3u32 {
        machine.spawn(Box::new(Producer {
            chan: stage1,
            trace: compute_trace("produce", 200 + u16::try_from(i * 50).expect("small literal")),
            n: 40,
            sent: false,
        }));
    }
    for _ in 0..3 {
        machine.spawn(Box::new(Transformer {
            from: stage1,
            to: stage2,
            trace: compute_trace("transform", 400),
        }));
    }
    for i in 0..2u64 {
        machine.spawn(Box::new(Consumer { chan: stage2, pace: 5_000 + i * 1_000, next_wake: 0 }));
    }
}

/// Run the pipeline, optionally under a permuted scan order, and return
/// everything observable: per-CPU counters and the run outcome.
fn run_once(platform: Platform, seed: Option<u64>) -> (Vec<PerfCounters>, u64, u64, u64) {
    let mut m = Machine::new(platform.config());
    if let Some(s) = seed {
        m.set_scan_permutation(s);
    }
    build(&mut m);
    m.run(150_000);
    m.reset_counters();
    let out = m.run(2_000_000);
    (m.counters().to_vec(), out.end_time, out.completed_units, out.completed_bytes)
}

#[test]
fn scan_permutation_cannot_change_the_simulation() {
    // ≥8 permutation seeds plus the unpermuted baseline, on both a
    // dual-core and an SMT platform (different CPU counts and sharing).
    let seeds: [u64; 9] = [1, 2, 3, 5, 8, 13, 0xDEAD_BEEF, u64::MAX, 42];
    for platform in [Platform::TwoCorePentiumM, Platform::TwoLogicalXeon] {
        let baseline = run_once(platform, None);
        assert!(baseline.2 > 0, "pipeline must make progress on {platform:?}");
        for seed in seeds {
            let permuted = run_once(platform, Some(seed));
            assert_eq!(
                baseline, permuted,
                "scan permutation seed {seed} changed the simulation on {platform:?}"
            );
        }
    }
}

#[test]
fn aggregate_counters_match_across_permutations() {
    // The aggregate block (what reports consume) must also be identical
    // field-for-field across permutations.
    let base = run_once(Platform::TwoCorePentiumM, None).0;
    let base_total = base.iter().fold(PerfCounters::default(), |mut acc, c| {
        acc.merge(c);
        acc
    });
    for seed in 100..108u64 {
        let run = run_once(Platform::TwoCorePentiumM, Some(seed)).0;
        let total = run.iter().fold(PerfCounters::default(), |mut acc, c| {
            acc.merge(c);
            acc
        });
        assert_eq!(base_total, total, "aggregate counters diverged at seed {seed}");
    }
}
