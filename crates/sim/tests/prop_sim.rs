//! Property tests for simulator components: the cache array against a
//! reference LRU model, timeline monotonicity, and channel conservation.

use aon_sim::bus::{BusyTimeline, SlotTimeline};
use aon_sim::cache::{CacheArray, Lookup, Mesi};
use aon_sim::sync::{ChannelConfig, Msg, SimChannel};
use aon_trace::VAddr;
use proptest::prelude::*;
use std::collections::VecDeque;

/// Reference model: per-set LRU lists.
struct RefCache {
    sets: u64,
    ways: usize,
    lists: Vec<VecDeque<u64>>,
}

impl RefCache {
    fn new(sets: u64, ways: usize) -> Self {
        RefCache { sets, ways, lists: (0..sets).map(|_| VecDeque::new()).collect() }
    }

    fn set_of(&self, line: u64) -> usize {
        usize::try_from(line % self.sets).expect("set count fits usize")
    }

    fn lookup(&mut self, line: u64) -> bool {
        let s = self.set_of(line);
        if let Some(pos) = self.lists[s].iter().position(|&l| l == line) {
            let l = self.lists[s].remove(pos).expect("present");
            self.lists[s].push_back(l);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, line: u64) {
        let s = self.set_of(line);
        if let Some(pos) = self.lists[s].iter().position(|&l| l == line) {
            let l = self.lists[s].remove(pos).expect("present");
            self.lists[s].push_back(l);
            return;
        }
        if self.lists[s].len() == self.ways {
            self.lists[s].pop_front();
        }
        self.lists[s].push_back(line);
    }

    fn invalidate(&mut self, line: u64) {
        let s = self.set_of(line);
        self.lists[s].retain(|&l| l != line);
    }
}

#[derive(Debug, Clone)]
enum CacheOp {
    Lookup(u64),
    Fill(u64),
    Invalidate(u64),
}

fn arb_cache_op() -> impl Strategy<Value = CacheOp> {
    // A small line universe so sets conflict frequently.
    let line = 0u64..256;
    prop_oneof![
        line.clone().prop_map(CacheOp::Lookup),
        (0u64..256).prop_map(CacheOp::Fill),
        (0u64..256).prop_map(CacheOp::Invalidate),
    ]
}

proptest! {
    #[test]
    fn cache_agrees_with_reference_lru(ops in prop::collection::vec(arb_cache_op(), 1..500)) {
        let mut cache = CacheArray::new(8, 4);
        let mut reference = RefCache::new(8, 4);
        for op in ops {
            match op {
                CacheOp::Lookup(l) => {
                    let hit = matches!(cache.lookup(l), Lookup::Hit(_));
                    prop_assert_eq!(hit, reference.lookup(l), "lookup({}) disagreed", l);
                }
                CacheOp::Fill(l) => {
                    cache.fill(l, Mesi::Exclusive);
                    reference.fill(l);
                }
                CacheOp::Invalidate(l) => {
                    cache.invalidate(l);
                    reference.invalidate(l);
                }
            }
        }
    }

    #[test]
    fn slot_timeline_is_monotonic_and_rate_limited(
        width in 10u32..400,
        bookings in prop::collection::vec((0u64..10_000, 1u32..50), 1..200),
    ) {
        let mut t = SlotTimeline::new(width);
        let mut prev_end = 0u64;
        let mut total_slots = 0u64;
        let mut max_earliest = 0u64;
        for (earliest, slots) in bookings {
            let end = t.book(earliest, slots);
            total_slots += slots as u64;
            max_earliest = max_earliest.max(earliest);
            // Completion can never regress.
            prop_assert!(end >= prev_end);
            prev_end = end;
        }
        // Cannot complete faster than the width allows.
        let min_cycles = total_slots * 100 / width as u64;
        prop_assert!(prev_end + 1 >= min_cycles, "end {} < min {}", prev_end, min_cycles);
    }

    #[test]
    fn busy_timeline_bookings_never_overlap(
        bookings in prop::collection::vec((0u64..10_000, 1u64..100), 1..200),
    ) {
        let mut t = BusyTimeline::new();
        let mut prev_end = 0u64;
        let mut busy_sum = 0u64;
        for (earliest, busy) in bookings {
            let (start, end) = t.book(earliest, busy);
            prop_assert!(start >= earliest);
            prop_assert!(start >= prev_end, "windows must not overlap");
            prop_assert_eq!(end - start, busy);
            prev_end = end;
            busy_sum += busy;
        }
        prop_assert_eq!(t.busy_total(), busy_sum);
    }

    #[test]
    fn channel_conserves_bytes(
        capacity in 1000u32..100_000,
        sends in prop::collection::vec((1u32..5_000, any::<u64>()), 1..100),
    ) {
        let mut ch = SimChannel::new(ChannelConfig::bounded(capacity, VAddr(0x1000)));
        let mut accepted = 0u64;
        let mut received = 0u64;
        let mut now = 0u64;
        for (bytes, tag) in sends {
            now += 10;
            if ch.try_send(Msg { bytes: bytes.min(capacity) , tag }, now) {
                accepted += bytes.min(capacity) as u64;
            }
            // Occasionally drain one message.
            if tag % 3 == 0 {
                if let Some(m) = ch.try_recv(now) {
                    received += m.bytes as u64;
                }
            }
            prop_assert!(ch.occupied(now) <= capacity as u64);
        }
        // Drain the rest.
        while let Some(m) = ch.try_recv(now) {
            received += m.bytes as u64;
        }
        prop_assert_eq!(accepted, received, "bytes in == bytes out");
        prop_assert_eq!(ch.occupied(now), 0);
    }

    #[test]
    fn draining_channel_never_loses_messages_midair(
        drain in 1u32..2000,
        msgs in prop::collection::vec(1u32..2000, 1..50),
    ) {
        let mut ch = SimChannel::new(ChannelConfig {
            capacity: 1 << 20,
            drain_per_kcycle: drain,
            buf_base: VAddr(0x1000),
            fill: None,
        });
        let mut sent = 0u64;
        for (i, bytes) in msgs.iter().enumerate() {
            assert!(ch.try_send(Msg { bytes: *bytes, tag: i as u64 }, i as u64 * 5));
            sent += *bytes as u64;
        }
        // After enough time everything drains, exactly once.
        let eta = sent * 1024 / drain as u64 + msgs.len() as u64 * 10 + 10;
        prop_assert_eq!(ch.occupied(eta * 2), 0);
        prop_assert_eq!(ch.total_bytes_out, sent);
    }
}
