//! Scheduler regression tests — including the timed-waiter starvation bug
//! (a `Waiting(at)` thread must wake while other CPUs stay busy).

use aon_sim::config::Platform;
use aon_sim::machine::Machine;
use aon_sim::sync::{ChannelConfig, Msg};
use aon_sim::thread::{Step, Workload, WorkloadCtx};
use aon_trace::trace::{Binding, Trace};
use aon_trace::{Op, VAddr};
use std::sync::Arc;

/// Spins on the CPU forever (never blocks).
struct Spinner {
    trace: Arc<Trace>,
}

impl Workload for Spinner {
    fn next(&mut self, _ctx: &mut WorkloadCtx) -> Step {
        Step::Run { trace: Arc::clone(&self.trace), binding: Binding::new() }
    }
}

/// Sleeps in fixed intervals, counting wakes via complete_units.
struct Ticker {
    interval: u64,
    next: u64,
    remaining: u32,
}

impl Workload for Ticker {
    fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
        if self.remaining == 0 {
            return Step::Done;
        }
        if ctx.now >= self.next {
            self.remaining -= 1;
            self.next += self.interval;
            ctx.complete_units = 1;
        }
        Step::WaitUntil(self.next)
    }
}

fn spin_trace() -> Arc<Trace> {
    let mut t = Trace::with_label("spin");
    t.push(Op::Alu(1000));
    Arc::new(t)
}

#[test]
fn timed_waiters_wake_while_another_cpu_is_busy() {
    // Regression: with one CPU pinned by a spinner, a ticker on the other
    // CPU must still fire on schedule (the frontier promotes waiters).
    let mut m = Machine::new(Platform::TwoCorePentiumM.config());
    m.spawn(Box::new(Spinner { trace: spin_trace() }));
    m.spawn(Box::new(Ticker { interval: 100_000, next: 100_000, remaining: 50 }));
    let out = m.run(20_000_000);
    assert_eq!(out.completed_units, 50, "every tick must fire");
    assert!(!out.deadlocked);
}

#[test]
fn sender_blocked_on_full_channel_wakes_on_recv() {
    struct Producer {
        chan: aon_sim::sync::ChannelId,
        n: u32,
    }
    impl Workload for Producer {
        fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
            if self.n == 0 {
                return Step::Done;
            }
            self.n -= 1;
            ctx.complete_units = 1;
            Step::Send { chan: self.chan, msg: Msg { bytes: 1000, tag: self.n as u64 } }
        }
    }
    struct SlowConsumer {
        chan: aon_sim::sync::ChannelId,
        next_wake: u64,
        got: u32,
    }
    impl Workload for SlowConsumer {
        fn next(&mut self, ctx: &mut WorkloadCtx) -> Step {
            if ctx.last_recv.is_some() {
                self.got += 1;
            }
            if self.got >= 20 {
                return Step::Done;
            }
            // Poll slowly: forces the producer to block on the full buffer.
            if ctx.now < self.next_wake {
                return Step::WaitUntil(self.next_wake);
            }
            self.next_wake = ctx.now + 50_000;
            Step::Recv { chan: self.chan }
        }
    }
    let mut m = Machine::new(Platform::OneCorePentiumM.config());
    let chan = m.add_channel(ChannelConfig::bounded(2_000, VAddr(0x100_0000)));
    m.spawn(Box::new(Producer { chan, n: 20 }));
    m.spawn(Box::new(SlowConsumer { chan, next_wake: 0, got: 0 }));
    let out = m.run(100_000_000);
    assert!(!out.deadlocked, "producer/slow-consumer must complete");
    assert_eq!(out.completed_units, 20);
}

#[test]
fn done_threads_release_their_cpu() {
    let mut m = Machine::new(Platform::OneCorePentiumM.config());
    // Three short-lived threads must all run on the single CPU in turn.
    for _ in 0..3 {
        m.spawn(Box::new(aon_sim::thread::LoopWorkload::new(
            {
                let mut t = Trace::default();
                t.push(Op::Alu(100));
                t
            },
            Binding::new(),
            5,
        )));
    }
    let out = m.run(10_000_000);
    assert_eq!(out.completed_units, 15);
    assert!(!out.deadlocked);
}

#[test]
fn profile_attributes_cycles_to_trace_labels() {
    let mut m = Machine::new(Platform::OneCorePentiumM.config());
    let mut heavy = Trace::with_label("heavy");
    heavy.push(Op::Alu(50_000));
    let mut light = Trace::with_label("light");
    light.push(Op::Alu(5_000));
    m.spawn(Box::new(aon_sim::thread::LoopWorkload::new(heavy, Binding::new(), 4)));
    m.spawn(Box::new(aon_sim::thread::LoopWorkload::new(light, Binding::new(), 4)));
    m.run(100_000_000);
    let prof = m.profile();
    let h = *prof.get("heavy").expect("heavy profiled");
    let l = *prof.get("light").expect("light profiled");
    assert!(h > l * 5, "cycle attribution must follow work: heavy {h} vs light {l}");
    // Attribution is bounded by wall time.
    assert!(h + l <= 100_000_000);
}
