//! End-to-end SMT effect tests: the mechanisms behind the paper's §5.5
//! observations, isolated with synthetic workloads.

use aon_sim::config::Platform;
use aon_sim::convert::ratio;
use aon_sim::machine::Machine;
use aon_sim::thread::LoopWorkload;
use aon_trace::code::site_hash;
use aon_trace::trace::{Binding, Trace};
use aon_trace::Op;

/// A branchy trace of short periodic loop patterns — fully predictable
/// with a private global-history register (the period fits in the history
/// window), destroyed when a sibling thread's outcomes interleave into a
/// shared history register.
fn branchy_trace(n: u32, seed: u32) -> Trace {
    let mut t = Trace::with_label("branchy");
    let base = site_hash("synthetic.rs", 1, 1);
    for i in 0..n {
        let site = (i + seed) % 4;
        let period = [5u32, 6, 7, 3][site as usize];
        t.push(Op::Alu(3));
        t.push(Op::Branch {
            site: base ^ site.wrapping_mul(0x9e37_79b9),
            taken: (i % period) != 0,
        });
    }
    t
}

fn brmpr_with_two_threads(p: Platform) -> f64 {
    let mut m = Machine::new(p.config());
    m.spawn(Box::new(LoopWorkload::new(branchy_trace(20_000, 7), Binding::new(), 10)));
    m.spawn(Box::new(LoopWorkload::new(branchy_trace(20_000, 13), Binding::new(), 10)));
    m.run(1_000_000_000);
    m.counters_total().brmpr_pct()
}

#[test]
fn shared_history_hurts_hyperthreads_but_not_packages() {
    // Same two threads: on 2LPx they share one core's history register; on
    // 2PPx they have private predictors. Table 6's §5.5 observation.
    let ht = brmpr_with_two_threads(Platform::TwoLogicalXeon);
    let pp = brmpr_with_two_threads(Platform::TwoPhysicalXeon);
    assert!(
        ht > pp * 1.25,
        "HT history sharing must inflate BrMPR: 2LPx {ht:.2}% vs 2PPx {pp:.2}%"
    );
}

#[test]
fn pm_dual_core_predicts_like_single_core() {
    let one = {
        let mut m = Machine::new(Platform::OneCorePentiumM.config());
        m.spawn(Box::new(LoopWorkload::new(branchy_trace(20_000, 7), Binding::new(), 10)));
        m.run(1_000_000_000);
        m.counters_total().brmpr_pct()
    };
    let two = brmpr_with_two_threads(Platform::TwoCorePentiumM);
    // Private predictors per core: no meaningful inflation.
    assert!(
        (two - one).abs() < one.max(0.2) * 0.5 + 0.2,
        "dual-core PM must not inflate BrMPR: {one:.2}% -> {two:.2}%"
    );
}

#[test]
fn smt_throughput_gain_depends_on_stall_fraction() {
    // A memory-stalling trace benefits from SMT; a pure-ALU trace barely
    // does (the paper's reverse trend, §5.1).
    use aon_trace::{Addr, RegionSlot};

    let alu_trace = {
        let mut t = Trace::with_label("alu");
        for _ in 0..5_000 {
            t.push(Op::Alu(16));
        }
        t
    };
    let mem_trace = {
        let mut t = Trace::with_label("mem");
        for i in 0..5_000u32 {
            // Streaming loads: every line misses.
            t.push(Op::Load { addr: Addr::new(RegionSlot::MSG, i * 64), size: 8 });
            t.push(Op::Alu(2));
        }
        t
    };

    let elapsed = |trace: &Trace, threads: u32| -> u64 {
        let mut m = Machine::new(Platform::TwoLogicalXeon.config());
        for k in 0..threads {
            let mut b = Binding::new();
            // Distinct streaming regions per thread.
            b.bind(RegionSlot::MSG, aon_trace::VAddr(0x4000_0000 + k as u64 * 0x400_0000));
            m.spawn(Box::new(LoopWorkload::new(trace.clone(), b, 8)));
        }
        m.run(5_000_000_000).end_time
    };

    let alu_gain = ratio(elapsed(&alu_trace, 1), elapsed(&alu_trace, 2)) * 2.0;
    let mem_gain = ratio(elapsed(&mem_trace, 1), elapsed(&mem_trace, 2)) * 2.0;
    assert!(
        mem_gain > alu_gain + 0.2,
        "SMT must help stall-heavy work more: mem {mem_gain:.2}x vs alu {alu_gain:.2}x"
    );
    assert!(alu_gain < 1.35, "issue-bound work cannot double on one core: {alu_gain:.2}x");
}
