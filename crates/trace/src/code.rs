//! Synthetic program counters for instrumentation sites.
//!
//! Branch predictors and instruction caches key on program counters. Since
//! the workload runs as instrumented Rust rather than machine code, every
//! instrumentation call site is assigned a *stable* synthetic PC derived
//! from its `file!()/line!()/column!()` coordinates via an FNV-1a hash.
//!
//! Stability matters twice over: (a) runs are reproducible, and (b) the
//! same source-level branch maps to the same predictor entry on every
//! platform configuration, so cross-platform comparisons (Pentium M vs.
//! Xeon) see identical branch streams — exactly the paper's methodology of
//! running one binary on both machines.
//!
//! Site ids are 32-bit. The simulator folds them into the code segment
//! (`CODE_BASE + (site & MASK)`), giving a synthetic text layout of a few
//! megabytes; incidental aliasing between two source branches is both rare
//! and realistic (real predictors alias too).

use crate::vaddr::{VAddr, CODE_BASE};

/// A stable identifier for an instrumentation site (branch, jump, or the
/// notional location of straight-line code).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SiteId(pub u32);

/// FNV-1a over the site coordinates. `const fn` so sites can be computed at
/// compile time by the [`site!`](crate::site) macro.
// Truncation is the point of the final fold (it's a hash), and `try_from`
// is not callable in a `const fn`.
#[allow(clippy::cast_possible_truncation)]
pub const fn site_hash(file: &str, line: u32, column: u32) -> u32 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let bytes = file.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        h ^= bytes[i] as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
        i += 1;
    }
    h ^= line as u64;
    h = h.wrapping_mul(0x1000_0000_01b3);
    h ^= column as u64;
    h = h.wrapping_mul(0x1000_0000_01b3);
    // Fold to 32 bits.
    ((h >> 32) ^ (h & 0xffff_ffff)) as u32
}

/// Construct a [`SiteId`] from source coordinates.
pub const fn site_from(file: &str, line: u32, column: u32) -> SiteId {
    SiteId(site_hash(file, line, column))
}

/// Span of the synthetic text segment in bytes (4 MiB).
pub const TEXT_SPAN: u64 = 4 << 20;

/// Convert a site id to a synthetic program counter in the code segment.
#[inline]
pub fn site_pc(site: u32) -> VAddr {
    // Instructions are notionally 4 bytes; mask the hash into the text span.
    VAddr(CODE_BASE + ((site as u64 * 4) % TEXT_SPAN))
}

/// Compute a [`SiteId`] for the current source location.
///
/// Usage: `probe.branch(site!(), cond)`. Expands to a compile-time constant.
/// The inline-`const` block is load-bearing: `site_from` hashes the file
/// path, and without the block the hash is a runtime call on every probe —
/// dominating tight scan loops even under `NullProbe`.
#[macro_export]
macro_rules! site {
    () => {
        const { $crate::code::site_from(file!(), line!(), column!()) }
    };
}

/// Record a conditional branch on `$probe` and yield the condition value,
/// so instrumented code reads naturally:
///
/// ```ignore
/// if br!(probe, byte == b'<') { ... }
/// ```
#[macro_export]
macro_rules! br {
    ($probe:expr, $cond:expr) => {{
        let __c: bool = $cond;
        $crate::probe::Probe::branch($probe, $crate::site!(), __c);
        __c
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_stable() {
        assert_eq!(site_hash("a.rs", 1, 2), site_hash("a.rs", 1, 2));
        assert_ne!(site_hash("a.rs", 1, 2), site_hash("a.rs", 1, 3));
        assert_ne!(site_hash("a.rs", 1, 2), site_hash("b.rs", 1, 2));
    }

    #[test]
    fn pc_lands_in_text_segment() {
        for s in [0u32, 1, 0xdead_beef, u32::MAX] {
            let pc = site_pc(s);
            assert!(pc.0 >= CODE_BASE);
            assert!(pc.0 < CODE_BASE + TEXT_SPAN);
        }
    }

    #[test]
    fn site_macro_compiles_to_constant() {
        const S: SiteId = site_from(file!(), line!(), column!());
        let t = S;
        assert_eq!(S, t);
    }

    #[test]
    fn distinct_sites_mostly_distinct_pcs() {
        // Sanity-check collision rate over a plausible number of sites.
        let mut pcs = std::collections::HashSet::new();
        let mut collisions = 0;
        for line in 0..2000u32 {
            let pc = site_pc(site_hash("src/parser.rs", line, line % 80)).0;
            if !pcs.insert(pc) {
                collisions += 1;
            }
        }
        assert!(collisions < 20, "too many PC collisions: {collisions}");
    }
}
