//! # aon-trace — abstract ISA and instrumentation substrate
//!
//! The ICPP 2007 AON paper measures real Pentium M / Xeon hardware with
//! on-chip performance counters. This workspace replaces the hardware with a
//! cycle-approximate simulator (`aon-sim`), which needs an instruction,
//! memory and branch stream to execute. `aon-trace` is the substrate that
//! produces that stream from *real* workload code:
//!
//! * [`op`] defines the abstract, architecture-neutral operation set
//!   ([`Op`]): integer/logic work, loads, stores, conditional branches and
//!   unconditional jumps. Per-architecture *cracking* of abstract ops into
//!   retired instruction counts lives in the simulator, not here.
//! * [`vaddr`] provides a deterministic virtual address space so traced
//!   memory accesses carry realistic, reproducible addresses.
//! * [`code`] maps instrumentation call sites (file/line/column) to stable
//!   synthetic program counters, which drive instruction fetch and branch
//!   prediction in the simulator.
//! * [`probe`] defines the [`Probe`] sink trait. Workload code (the XML
//!   parser, XPath engine, HTTP proxy, TCP cost model, …) is written against
//!   a generic `P: Probe`; with [`NullProbe`] the code runs natively with
//!   near-zero overhead, with [`Tracer`] it records a replayable trace.
//! * [`trace`] holds the recorded [`Trace`]: a compact op sequence with
//!   *relocatable* addresses (region slot + offset), so one recorded trace
//!   can be replayed against fresh buffer placements — exactly how a server
//!   re-runs the same code on every incoming message buffer.
//! * [`mix`] derives instruction-mix statistics used for sanity checks and
//!   for the paper's Table 5 style branch-frequency analysis.
//!
//! The central design point: traces are recorded by *executing the real
//! algorithms on real bytes*. Locality, branch bias, and instruction mix are
//! emergent properties of the workload implementation, not knobs.

pub mod code;
pub mod mix;
pub mod num;
pub mod op;
pub mod probe;
pub mod trace;
pub mod tracer;
pub mod vaddr;

pub use code::SiteId;
pub use op::{Addr, Op, RegionSlot};
pub use probe::{NullProbe, Probe, ProbeExt};
pub use trace::{Trace, TraceStats};
pub use tracer::Tracer;
pub use vaddr::{AddrSpace, VAddr};
