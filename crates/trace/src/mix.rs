//! Instruction-mix analysis of recorded traces.
//!
//! The paper leans on instruction-mix observations twice: Table 5 (branch
//! instructions retired per instruction retired) and the §3.2 workload
//! characterization (XML content processing is string-manipulation heavy,
//! exercises logic ops / caches / branch prediction rather than floating
//! point). This module derives those mixes from traces so tests can assert
//! the workloads we generate have the documented character — e.g. that the
//! network-I/O-heavy FR trace is ~25 % richer in branches than SV/CBR.

use crate::num::ratio;
use crate::trace::{Trace, TraceStats};

/// Fractional instruction mix of a trace, at abstract-op granularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mix {
    /// ALU fraction.
    pub alu: f64,
    /// Load fraction.
    pub load: f64,
    /// Store fraction.
    pub store: f64,
    /// Conditional-branch fraction.
    pub branch: f64,
    /// Unconditional-transfer fraction.
    pub jump: f64,
    /// Fraction of conditional branches that were taken.
    pub taken_ratio: f64,
    /// Total abstract ops the mix was computed over.
    pub total_ops: u64,
}

impl Mix {
    /// Compute the mix of a trace. Returns an all-zero mix for empty traces.
    pub fn of(trace: &Trace) -> Mix {
        Self::of_stats(&trace.stats())
    }

    /// Compute the mix from precomputed stats.
    pub fn of_stats(s: &TraceStats) -> Mix {
        let total = s.ops.max(1);
        Mix {
            alu: ratio(s.alus, total),
            load: ratio(s.loads, total),
            store: ratio(s.stores, total),
            branch: ratio(s.branches, total),
            jump: ratio(s.jumps, total),
            taken_ratio: ratio(s.taken_branches, s.branches),
            total_ops: s.ops,
        }
    }

    /// Fractions sum to ~1 (sanity invariant; holds for non-empty traces).
    pub fn is_normalized(&self) -> bool {
        if self.total_ops == 0 {
            return true;
        }
        let sum = self.alu + self.load + self.store + self.branch + self.jump;
        (sum - 1.0).abs() < 1e-9
    }
}

impl core::fmt::Display for Mix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "alu {:.1}% ld {:.1}% st {:.1}% br {:.1}% (taken {:.1}%) jmp {:.1}% [{} ops]",
            self.alu * 100.0,
            self.load * 100.0,
            self.store * 100.0,
            self.branch * 100.0,
            self.taken_ratio * 100.0,
            self.jump * 100.0,
            self.total_ops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{Addr, Op, RegionSlot};

    #[test]
    fn mix_of_empty_trace() {
        let m = Mix::of(&Trace::default());
        assert_eq!(m.total_ops, 0);
        assert!(m.is_normalized());
    }

    #[test]
    fn mix_fractions() {
        let mut t = Trace::default();
        t.push(Op::Alu(6));
        t.push(Op::Load { addr: Addr::new(RegionSlot::MSG, 0), size: 8 });
        t.push(Op::Store { addr: Addr::new(RegionSlot::OUT, 0), size: 8 });
        t.push(Op::Branch { site: 1, taken: true });
        t.push(Op::Branch { site: 1, taken: false });
        let m = Mix::of(&t);
        assert_eq!(m.total_ops, 10);
        assert!((m.alu - 0.6).abs() < 1e-12);
        assert!((m.branch - 0.2).abs() < 1e-12);
        assert!((m.taken_ratio - 0.5).abs() < 1e-12);
        assert!(m.is_normalized());
    }

    #[test]
    fn display_is_readable() {
        let mut t = Trace::default();
        t.push(Op::Alu(1));
        let s = format!("{}", Mix::of(&t));
        assert!(s.contains("alu 100.0%"));
    }
}
