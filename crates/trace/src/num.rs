//! Lossless numeric conversions for counter arithmetic.
//!
//! `u64 as f64` silently rounds above 2^53, so counter math across the
//! workspace goes through these helpers instead of raw casts: conversion
//! through two `u32` halves is exact for every value the simulator and
//! trace statistics can produce, and the debug assertion documents the
//! bound instead of hiding it.

/// Exact `u64` → `f64` conversion for counter-sized values.
///
/// Splits into 32-bit halves so each part converts exactly; asserts (in
/// debug builds) that the value sits below 2^53, where `f64` is exact.
pub fn exact_f64(v: u64) -> f64 {
    debug_assert!(v <= (1u64 << 53), "counter value {v} exceeds f64's exact integer range");
    let hi = u32::try_from(v >> 32).expect("upper half fits u32");
    let lo = u32::try_from(v & 0xffff_ffff).expect("lower half fits u32");
    f64::from(hi) * 4_294_967_296.0 + f64::from(lo)
}

/// `num / den` as `f64`, defined as 0.0 when `den == 0`.
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        exact_f64(num) / exact_f64(den)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_for_large_counters() {
        assert_eq!(exact_f64(0), 0.0);
        assert_eq!(exact_f64(1), 1.0);
        assert_eq!(exact_f64(u64::from(u32::MAX)), 4_294_967_295.0);
        assert_eq!(exact_f64((1 << 53) - 1), 9_007_199_254_740_991.0);
        assert_eq!(exact_f64(1 << 53), 9_007_199_254_740_992.0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert_eq!(ratio(1, 2), 0.5);
        assert_eq!(ratio(0, 7), 0.0);
    }
}
