//! The abstract, architecture-neutral operation set.
//!
//! Instrumented workload code emits these ops. They deliberately sit *above*
//! any concrete ISA: the simulator's per-architecture cracking model
//! (`aon-sim::isa`) decides how many retired instructions each abstract op
//! corresponds to on Pentium M vs. Netburst Xeon — which is how the paper's
//! Table 5 observation (Pentium M retires ~2x the branch *fraction* of Xeon
//! for identical source code) is reproduced.
//!
//! Memory addresses are *relocatable*: an [`Addr`] is a region slot plus an
//! offset, and the binding of slots to absolute [`VAddr`](crate::VAddr)
//! bases happens at replay time. This lets a single recorded trace be
//! replayed against a fresh message buffer for every simulated request,
//! which is what makes streaming network payloads miss in the cache while
//! static data (schemas, routing tables, code) stays warm.

/// Identifies one of the (at most [`RegionSlot::MAX`]) relocatable memory
/// regions a trace references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionSlot(pub u8);

impl RegionSlot {
    /// Maximum number of distinct regions per trace.
    pub const MAX: usize = 16;

    /// Static data: schemas, routing tables, interned strings. Bound to the
    /// same base on every replay, so it stays cache-resident.
    pub const STATIC: RegionSlot = RegionSlot(0);
    /// The incoming message / payload buffer. Bound to a fresh base per
    /// replay to model streaming data with no temporal reuse.
    pub const MSG: RegionSlot = RegionSlot(1);
    /// Per-request working memory (DOM arena, token buffers). Rebound per
    /// replay but typically drawn from a small recycled pool.
    pub const WORK: RegionSlot = RegionSlot(2);
    /// Thread stack.
    pub const STACK: RegionSlot = RegionSlot(3);
    /// Outgoing / destination buffer (forwarded message, kernel socket buf).
    pub const OUT: RegionSlot = RegionSlot(4);
    /// Secondary input buffer (e.g. receive side of a copy).
    pub const IN2: RegionSlot = RegionSlot(5);
    /// Kernel connection state (sockets, fd tables, timers, route cache).
    /// Bound to a rotating window so per-connection structures behave like
    /// a slab allocator cycling through a working set far larger than L2.
    pub const KERNEL: RegionSlot = RegionSlot(6);
    /// Kernel global tables (conntrack hash, dentry/inode caches). Bound
    /// with a *slow* per-worker rotation, so the tier's reuse distance sits
    /// between the two modelled L2 sizes.
    pub const KERNEL2: RegionSlot = RegionSlot(7);
    /// The cold kernel expanse (page structs, far slabs). Bound with a
    /// *fast* wide rotation: reuse distance beyond any modelled L2.
    pub const KERNEL3: RegionSlot = RegionSlot(8);

    /// Index into a slot-binding table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A relocatable address: `base(slot) + offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Addr {
    /// Which relocatable region this access falls in.
    pub slot: RegionSlot,
    /// Byte offset within the region.
    pub offset: u32,
}

impl Addr {
    /// Construct an address.
    #[inline]
    pub fn new(slot: RegionSlot, offset: u32) -> Self {
        Addr { slot, offset }
    }
}

/// One abstract operation.
///
/// `Alu` ops are run-length compressed: the tracer coalesces consecutive
/// integer/logic work into a single `Alu(n)` record, which keeps traces
/// compact (XML parsing emits on the order of 10^5–10^6 abstract ops per
/// 5 KB message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// `n` integer / logic / address-arithmetic operations.
    Alu(u16),
    /// A data load of `size` bytes.
    Load {
        /// Relocatable source address.
        addr: Addr,
        /// Access width in bytes (1–64).
        size: u8,
    },
    /// A data store of `size` bytes.
    Store {
        /// Relocatable destination address.
        addr: Addr,
        /// Access width in bytes (1–64).
        size: u8,
    },
    /// A conditional branch at the given code site.
    Branch {
        /// Stable site id (hashes to a synthetic PC).
        site: u32,
        /// Whether the branch was taken in this execution.
        taken: bool,
    },
    /// An unconditional transfer (call/ret/jump) at the given code site.
    Jump {
        /// Stable site id.
        site: u32,
    },
}

/// Coarse classification of abstract ops, used by instruction-mix statistics
/// and by per-architecture cracking models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer/logic work.
    Alu,
    /// Data load.
    Load,
    /// Data store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional transfer.
    Jump,
}

impl Op {
    /// The class of this op.
    #[inline]
    pub fn class(&self) -> OpClass {
        match self {
            Op::Alu(_) => OpClass::Alu,
            Op::Load { .. } => OpClass::Load,
            Op::Store { .. } => OpClass::Store,
            Op::Branch { .. } => OpClass::Branch,
            Op::Jump { .. } => OpClass::Jump,
        }
    }

    /// Number of abstract operations this record represents (`n` for
    /// `Alu(n)`, 1 otherwise).
    #[inline]
    pub fn weight(&self) -> u64 {
        match self {
            Op::Alu(n) => *n as u64,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_is_compact() {
        // Traces hold millions of these; keep the representation small.
        assert!(core::mem::size_of::<Op>() <= 12);
    }

    #[test]
    fn weight_counts_alu_runs() {
        assert_eq!(Op::Alu(7).weight(), 7);
        assert_eq!(Op::Load { addr: Addr::new(RegionSlot::MSG, 0), size: 8 }.weight(), 1);
    }

    #[test]
    fn classes() {
        assert_eq!(Op::Alu(1).class(), OpClass::Alu);
        assert_eq!(Op::Jump { site: 3 }.class(), OpClass::Jump);
        assert_eq!(Op::Branch { site: 1, taken: true }.class(), OpClass::Branch);
    }
}
