//! The instrumentation sink.
//!
//! Workload code is generic over `P: Probe`. Two implementations matter:
//!
//! * [`NullProbe`] — every method is an empty `#[inline]` body, so the
//!   workload compiles down to plain Rust; this is how `aon-xml` works as an
//!   ordinary XML library and how Criterion measures its native speed.
//! * [`Tracer`](crate::Tracer) — records a replayable [`Trace`](crate::Trace)
//!   for the simulator.
//!
//! Granularity convention (documented here because every substrate relies on
//! it): one `load`/`store` per *architectural* memory access the real code
//! would make (a byte fetch in a scan loop, an 8-byte word in a copy loop),
//! `alu(n)` for the `n` arithmetic/logic ops between memory accesses, and
//! one `branch` per source-level conditional actually executed. The
//! [`ProbeExt`] helpers encode common kernels (memcpy/memcmp/scan) with the
//! loop structure a compiler would emit, including the loop back-edge
//! branches that dominate branch-frequency statistics.

use crate::code::SiteId;
use crate::op::{Addr, RegionSlot};
use crate::site;

/// Sink for abstract operations emitted by instrumented workload code.
pub trait Probe {
    /// `n` integer/logic operations.
    fn alu(&mut self, n: u32);
    /// A data load of `size` bytes at `addr`.
    fn load(&mut self, addr: Addr, size: u8);
    /// A data store of `size` bytes at `addr`.
    fn store(&mut self, addr: Addr, size: u8);
    /// A conditional branch with outcome `taken` at code site `site`.
    fn branch(&mut self, site: SiteId, taken: bool);
    /// An unconditional transfer (call/ret) at code site `site`.
    fn jump(&mut self, site: SiteId);
}

/// A probe that discards everything; lets instrumented code run natively.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline(always)]
    fn alu(&mut self, _n: u32) {}
    #[inline(always)]
    fn load(&mut self, _addr: Addr, _size: u8) {}
    #[inline(always)]
    fn store(&mut self, _addr: Addr, _size: u8) {}
    #[inline(always)]
    fn branch(&mut self, _site: SiteId, _taken: bool) {}
    #[inline(always)]
    fn jump(&mut self, _site: SiteId) {}
}

/// Forwarding impl so `&mut T` can be passed where `P: Probe` is expected.
impl<T: Probe + ?Sized> Probe for &mut T {
    #[inline]
    fn alu(&mut self, n: u32) {
        (**self).alu(n)
    }
    #[inline]
    fn load(&mut self, addr: Addr, size: u8) {
        (**self).load(addr, size)
    }
    #[inline]
    fn store(&mut self, addr: Addr, size: u8) {
        (**self).store(addr, size)
    }
    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        (**self).branch(site, taken)
    }
    #[inline]
    fn jump(&mut self, site: SiteId) {
        (**self).jump(site)
    }
}

/// Higher-level emission helpers for common memory kernels.
///
/// These model the op stream of the obvious compiled loop: per 8-byte word,
/// a load (+ a store for copies), address arithmetic, and the loop back-edge
/// branch (taken for every iteration but the last).
pub trait ProbeExt: Probe + Sized {
    /// A word-at-a-time `memcpy` of `len` bytes from `src` to `dst`.
    fn copy(&mut self, dst: Addr, src: Addr, len: u32) {
        let words = len / 8;
        let tail = len % 8;
        for i in 0..words {
            self.load(Addr::new(src.slot, src.offset + i * 8), 8);
            self.store(Addr::new(dst.slot, dst.offset + i * 8), 8);
            self.alu(2); // pointer bumps
            self.branch(site!(), i + 1 < words || tail > 0);
        }
        if tail > 0 {
            self.load(Addr::new(src.slot, src.offset + words * 8), tail as u8);
            self.store(Addr::new(dst.slot, dst.offset + words * 8), tail as u8);
            self.alu(2);
            self.branch(site!(), false);
        }
    }

    /// A word-at-a-time `memcmp` over `len` bytes; `equal` is the real
    /// comparison outcome. On a mismatch the loop exits early, which we
    /// model (without knowing the mismatch position) as exiting halfway.
    fn compare(&mut self, a: Addr, b: Addr, len: u32, equal: bool) {
        let total = len.div_ceil(8);
        let words = if equal { total } else { total.div_ceil(2) };
        for i in 0..words {
            self.load(Addr::new(a.slot, a.offset + i * 8), 8);
            self.load(Addr::new(b.slot, b.offset + i * 8), 8);
            self.alu(2); // xor + test
            self.branch(site!(), i + 1 < words);
        }
    }

    /// A byte-scan over `len` bytes (e.g. delimiter search): one byte load,
    /// one compare, one conditional branch per byte.
    fn scan_bytes(&mut self, base: Addr, len: u32) {
        for i in 0..len {
            self.load(Addr::new(base.slot, base.offset + i), 1);
            self.alu(1);
            self.branch(site!(), i + 1 < len);
        }
    }

    /// `n` iterations of a counted loop with `body_alu` ALU ops per
    /// iteration and no memory traffic (e.g. checksum folding).
    fn counted_loop(&mut self, n: u32, body_alu: u32) {
        for i in 0..n {
            self.alu(body_alu);
            self.branch(site!(), i + 1 < n);
        }
    }

    /// Touch (load) every cache line of a `len`-byte buffer, modelling a
    /// DMA-visible read or a checksum pass at 8 bytes per load.
    fn stream_read(&mut self, base: Addr, len: u32) {
        let words = len.div_ceil(8);
        for i in 0..words {
            self.load(Addr::new(base.slot, base.offset + i * 8), 8);
            self.alu(1);
            self.branch(site!(), i + 1 < words);
        }
    }

    /// Store to every word of a `len`-byte buffer (e.g. zeroing, DMA write).
    fn stream_write(&mut self, base: Addr, len: u32) {
        let words = len.div_ceil(8);
        for i in 0..words {
            self.store(Addr::new(base.slot, base.offset + i * 8), 8);
            self.alu(1);
            self.branch(site!(), i + 1 < words);
        }
    }

    /// Model a function call: jump + stack frame setup (push ra/fp, adjust sp).
    fn call(&mut self, frame_bytes: u32, stack_depth: u32) {
        self.jump(site!());
        self.store(Addr::new(RegionSlot::STACK, stack_depth), 8);
        self.alu(2);
        let _ = frame_bytes;
    }

    /// Model a function return.
    fn ret(&mut self, stack_depth: u32) {
        self.load(Addr::new(RegionSlot::STACK, stack_depth), 8);
        self.alu(1);
        self.jump(site!());
    }
}

impl<P: Probe> ProbeExt for P {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;

    #[test]
    fn null_probe_is_usable() {
        let mut p = NullProbe;
        p.alu(3);
        p.copy(Addr::new(RegionSlot::OUT, 0), Addr::new(RegionSlot::MSG, 0), 100);
    }

    #[test]
    fn copy_emits_expected_counts() {
        let mut t = Tracer::new();
        t.copy(Addr::new(RegionSlot::OUT, 0), Addr::new(RegionSlot::MSG, 0), 64);
        let tr = t.finish();
        let s = tr.stats();
        assert_eq!(s.loads, 8);
        assert_eq!(s.stores, 8);
        assert_eq!(s.branches, 8);
    }

    #[test]
    fn copy_handles_tail() {
        let mut t = Tracer::new();
        t.copy(Addr::new(RegionSlot::OUT, 0), Addr::new(RegionSlot::MSG, 0), 13);
        let tr = t.finish();
        let s = tr.stats();
        assert_eq!(s.loads, 2); // one word + one tail
        assert_eq!(s.stores, 2);
    }

    #[test]
    fn scan_branch_bias_is_mostly_taken() {
        let mut t = Tracer::new();
        t.scan_bytes(Addr::new(RegionSlot::MSG, 0), 100);
        let tr = t.finish();
        let s = tr.stats();
        assert_eq!(s.branches, 100);
        assert_eq!(s.taken_branches, 99);
    }

    #[test]
    fn stream_rw_word_counts() {
        let mut t = Tracer::new();
        t.stream_read(Addr::new(RegionSlot::MSG, 0), 40);
        t.stream_write(Addr::new(RegionSlot::OUT, 0), 40);
        let tr = t.finish();
        let s = tr.stats();
        assert_eq!(s.loads, 5);
        assert_eq!(s.stores, 5);
    }
}
