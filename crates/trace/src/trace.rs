//! Recorded traces and their replay-time address binding.
//!
//! A [`Trace`] is the unit the simulator executes: a compact op sequence
//! whose memory addresses are relocatable (region slot + offset). A
//! [`Binding`] maps slots to absolute bases; the server's request loop binds
//! the `MSG` slot to a fresh buffer per simulated message while keeping the
//! `STATIC` slot pinned, so temporal-reuse differences between workloads
//! (the paper's FR vs. SV axis, §5.3) are emergent rather than configured.

use crate::num::ratio;
use crate::op::{Addr, Op, OpClass, RegionSlot};
use crate::vaddr::VAddr;

/// Aggregate counts over a trace (abstract-op granularity, pre-cracking).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total abstract operations (ALU runs expanded).
    pub ops: u64,
    /// ALU operations.
    pub alus: u64,
    /// Data loads.
    pub loads: u64,
    /// Data stores.
    pub stores: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Conditional branches that were taken.
    pub taken_branches: u64,
    /// Unconditional transfers.
    pub jumps: u64,
    /// Bytes loaded.
    pub bytes_loaded: u64,
    /// Bytes stored.
    pub bytes_stored: u64,
}

impl TraceStats {
    /// Accumulate one op record.
    pub fn record(&mut self, op: &Op) {
        match *op {
            Op::Alu(n) => {
                self.ops += n as u64;
                self.alus += n as u64;
            }
            Op::Load { size, .. } => {
                self.ops += 1;
                self.loads += 1;
                self.bytes_loaded += size as u64;
            }
            Op::Store { size, .. } => {
                self.ops += 1;
                self.stores += 1;
                self.bytes_stored += size as u64;
            }
            Op::Branch { taken, .. } => {
                self.ops += 1;
                self.branches += 1;
                if taken {
                    self.taken_branches += 1;
                }
            }
            Op::Jump { .. } => {
                self.ops += 1;
                self.jumps += 1;
            }
        }
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &TraceStats) {
        self.ops += other.ops;
        self.alus += other.alus;
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.taken_branches += other.taken_branches;
        self.jumps += other.jumps;
        self.bytes_loaded += other.bytes_loaded;
        self.bytes_stored += other.bytes_stored;
    }

    /// Fraction of abstract ops that are conditional branches.
    pub fn branch_fraction(&self) -> f64 {
        ratio(self.branches, self.ops)
    }

    /// Fraction of abstract ops that touch memory.
    pub fn memory_fraction(&self) -> f64 {
        ratio(self.loads + self.stores, self.ops)
    }
}

/// A recorded, replayable op sequence.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    ops: Vec<Op>,
    stats: TraceStats,
    /// Human-readable label ("cbr: parse+xpath", …) for reports and tests.
    pub label: String,
}

impl Trace {
    /// An empty trace with a label.
    pub fn with_label(label: impl Into<String>) -> Self {
        Trace { label: label.into(), ..Default::default() }
    }

    /// Append an op, maintaining stats. ALU runs are coalesced.
    pub fn push(&mut self, op: Op) {
        self.stats.record(&op);
        if let (Some(Op::Alu(prev)), Op::Alu(n)) = (self.ops.last_mut(), &op) {
            if let Ok(sum) = u16::try_from(u32::from(*prev) + u32::from(*n)) {
                *prev = sum;
                return;
            }
        }
        self.ops.push(op);
    }

    /// The op records (ALU runs still compressed).
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of op *records* (compressed length).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if no ops were recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> TraceStats {
        self.stats
    }

    /// Append all ops of `other`.
    ///
    /// Goes through [`Trace::push`], so an ALU run at the end of `self` and
    /// one at the start of `other` coalesce into a single record across the
    /// concatenation boundary (saturating at `u16::MAX`) — stitching
    /// memoized phase traces never inflates the record count or the op
    /// statistics.
    pub fn extend_from(&mut self, other: &Trace) {
        for op in &other.ops {
            self.push(*op);
        }
    }

    /// Content fingerprint: FNV-1a over every op record and the label.
    ///
    /// Two traces with identical op sequences and labels share a
    /// fingerprint, so a memoization layer can prove that a cache hit
    /// returned exactly what a fresh recording would have produced.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |word: u64| {
            h ^= word;
            h = h.wrapping_mul(PRIME);
        };
        for b in self.label.as_bytes() {
            mix(u64::from(*b));
        }
        for op in &self.ops {
            match *op {
                Op::Alu(n) => {
                    mix(1);
                    mix(u64::from(n));
                }
                Op::Load { addr, size } => {
                    mix(2);
                    mix(u64::from(addr.slot.0) << 40
                        | u64::from(addr.offset) << 8
                        | u64::from(size));
                }
                Op::Store { addr, size } => {
                    mix(3);
                    mix(u64::from(addr.slot.0) << 40
                        | u64::from(addr.offset) << 8
                        | u64::from(size));
                }
                Op::Branch { site, taken } => {
                    mix(4);
                    mix(u64::from(site) << 1 | u64::from(taken));
                }
                Op::Jump { site } => {
                    mix(5);
                    mix(u64::from(site));
                }
            }
        }
        h
    }

    /// Per-class op counts (expanded).
    pub fn class_counts(&self) -> [(OpClass, u64); 5] {
        [
            (OpClass::Alu, self.stats.alus),
            (OpClass::Load, self.stats.loads),
            (OpClass::Store, self.stats.stores),
            (OpClass::Branch, self.stats.branches),
            (OpClass::Jump, self.stats.jumps),
        ]
    }
}

/// Binding of region slots to absolute virtual addresses for one replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Binding {
    bases: [u64; RegionSlot::MAX],
}

impl Default for Binding {
    fn default() -> Self {
        Self::new()
    }
}

impl Binding {
    /// All slots bound to distinct, well-separated default bases. Useful for
    /// tests and single-shot replays.
    pub fn new() -> Self {
        let mut bases = [0u64; RegionSlot::MAX];
        for (i, b) in bases.iter_mut().enumerate() {
            // 16 MiB apart — far beyond any cache, so unbound slots never
            // accidentally alias.
            *b = 0x1000_0000 + (i as u64) * (16 << 20);
        }
        Binding { bases }
    }

    /// Bind `slot` to `base`.
    pub fn bind(&mut self, slot: RegionSlot, base: VAddr) -> &mut Self {
        self.bases[slot.index()] = base.0;
        self
    }

    /// Resolve a relocatable address.
    #[inline]
    pub fn resolve(&self, addr: Addr) -> VAddr {
        VAddr(self.bases[addr.slot.index()] + addr.offset as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(slot: RegionSlot, off: u32) -> Addr {
        Addr::new(slot, off)
    }

    #[test]
    fn push_coalesces_alu_runs() {
        let mut t = Trace::default();
        t.push(Op::Alu(3));
        t.push(Op::Alu(4));
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats().alus, 7);
        t.push(Op::Load { addr: addr(RegionSlot::MSG, 0), size: 8 });
        t.push(Op::Alu(1));
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn alu_coalescing_saturates_at_u16() {
        let mut t = Trace::default();
        t.push(Op::Alu(u16::MAX));
        t.push(Op::Alu(10));
        assert_eq!(t.len(), 2);
        assert_eq!(t.stats().alus, u16::MAX as u64 + 10);
    }

    #[test]
    fn stats_track_everything() {
        let mut t = Trace::default();
        t.push(Op::Load { addr: addr(RegionSlot::MSG, 4), size: 4 });
        t.push(Op::Store { addr: addr(RegionSlot::OUT, 8), size: 8 });
        t.push(Op::Branch { site: 7, taken: true });
        t.push(Op::Branch { site: 7, taken: false });
        t.push(Op::Jump { site: 9 });
        let s = t.stats();
        assert_eq!(s.ops, 5);
        assert_eq!(s.bytes_loaded, 4);
        assert_eq!(s.bytes_stored, 8);
        assert_eq!(s.taken_branches, 1);
        assert_eq!(s.jumps, 1);
        assert!((s.branch_fraction() - 0.4).abs() < 1e-12);
        assert!((s.memory_fraction() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn binding_resolves_with_offset() {
        let mut b = Binding::new();
        b.bind(RegionSlot::MSG, VAddr(0x5000));
        assert_eq!(b.resolve(addr(RegionSlot::MSG, 0x20)), VAddr(0x5020));
    }

    #[test]
    fn default_binding_slots_do_not_alias() {
        let b = Binding::new();
        let a0 = b.resolve(addr(RegionSlot::STATIC, 0));
        let a1 = b.resolve(addr(RegionSlot::MSG, 0));
        assert!(a1.0 - a0.0 >= (16 << 20));
    }

    #[test]
    fn extend_from_merges() {
        let mut a = Trace::default();
        a.push(Op::Alu(2));
        let mut b = Trace::default();
        b.push(Op::Alu(3));
        b.push(Op::Jump { site: 1 });
        a.extend_from(&b);
        assert_eq!(a.stats().alus, 5);
        assert_eq!(a.stats().jumps, 1);
    }

    #[test]
    fn extend_from_coalesces_alu_runs_across_the_boundary() {
        // Pin the concatenation contract trace memoization depends on: an
        // ALU run ending `a` and one starting `b` become ONE record, so
        // stitched traces carry the same record count and statistics a
        // single continuous recording would have produced.
        let mut a = Trace::default();
        a.push(Op::Load { addr: addr(RegionSlot::MSG, 0), size: 8 });
        a.push(Op::Alu(7));
        let mut b = Trace::default();
        b.push(Op::Alu(5));
        b.push(Op::Branch { site: 3, taken: true });

        let mut continuous = Trace::default();
        continuous.push(Op::Load { addr: addr(RegionSlot::MSG, 0), size: 8 });
        continuous.push(Op::Alu(12));
        continuous.push(Op::Branch { site: 3, taken: true });

        a.extend_from(&b);
        assert_eq!(a.len(), 3, "boundary ALU runs must merge into one record");
        assert_eq!(a.ops(), continuous.ops());
        assert_eq!(a.stats(), continuous.stats());
        // Saturation still splits (u16 ceiling), exactly like push does.
        let mut big = Trace::default();
        big.push(Op::Alu(u16::MAX));
        let mut tail = Trace::default();
        tail.push(Op::Alu(1));
        big.extend_from(&tail);
        assert_eq!(big.len(), 2);
        assert_eq!(big.stats().alus, u64::from(u16::MAX) + 1);
    }

    #[test]
    fn fingerprint_tracks_content() {
        let mut a = Trace::with_label("x");
        a.push(Op::Alu(3));
        a.push(Op::Load { addr: addr(RegionSlot::MSG, 4), size: 8 });
        let mut b = Trace::with_label("x");
        b.push(Op::Alu(3));
        b.push(Op::Load { addr: addr(RegionSlot::MSG, 4), size: 8 });
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.push(Op::Branch { site: 1, taken: false });
        assert_ne!(a.fingerprint(), b.fingerprint());
        let c = Trace::with_label("y");
        assert_ne!(Trace::with_label("x").fingerprint(), c.fingerprint());
    }
}
