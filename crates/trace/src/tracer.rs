//! The recording probe.

use crate::code::SiteId;
use crate::op::{Addr, Op};
use crate::probe::Probe;
use crate::trace::Trace;

/// A [`Probe`] that records every emitted operation into a [`Trace`].
///
/// ```
/// use aon_trace::{Tracer, Probe, ProbeExt, Addr, RegionSlot};
///
/// let mut t = Tracer::new();
/// t.alu(4);
/// t.copy(Addr::new(RegionSlot::OUT, 0), Addr::new(RegionSlot::MSG, 0), 256);
/// let trace = t.finish();
/// assert_eq!(trace.stats().loads, 32);
/// ```
#[derive(Debug, Default)]
pub struct Tracer {
    trace: Trace,
}

impl Tracer {
    /// A fresh tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// A fresh tracer whose trace carries `label`.
    pub fn with_label(label: impl Into<String>) -> Self {
        Tracer { trace: Trace::with_label(label) }
    }

    /// Finish recording and return the trace.
    pub fn finish(self) -> Trace {
        self.trace
    }

    /// Peek at the trace recorded so far.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl Probe for Tracer {
    #[inline]
    fn alu(&mut self, n: u32) {
        let mut rem = n;
        while rem > 0 {
            let chunk = u16::try_from(rem.min(u32::from(u16::MAX))).expect("clamped to u16 range");
            self.trace.push(Op::Alu(chunk));
            rem -= chunk as u32;
        }
    }

    #[inline]
    fn load(&mut self, addr: Addr, size: u8) {
        self.trace.push(Op::Load { addr, size });
    }

    #[inline]
    fn store(&mut self, addr: Addr, size: u8) {
        self.trace.push(Op::Store { addr, size });
    }

    #[inline]
    fn branch(&mut self, site: SiteId, taken: bool) {
        self.trace.push(Op::Branch { site: site.0, taken });
    }

    #[inline]
    fn jump(&mut self, site: SiteId) {
        self.trace.push(Op::Jump { site: site.0 });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::RegionSlot;

    #[test]
    fn records_in_order() {
        let mut t = Tracer::new();
        t.alu(1);
        t.load(Addr::new(RegionSlot::MSG, 0), 8);
        t.branch(SiteId(42), true);
        let tr = t.finish();
        assert!(matches!(tr.ops()[0], Op::Alu(1)));
        assert!(matches!(tr.ops()[1], Op::Load { .. }));
        assert!(matches!(tr.ops()[2], Op::Branch { site: 42, taken: true }));
    }

    #[test]
    fn huge_alu_runs_are_chunked() {
        let mut t = Tracer::new();
        t.alu(200_000);
        let tr = t.finish();
        assert_eq!(tr.stats().alus, 200_000);
        // 200_000 / 65_535 → 4 records, first 3 saturated.
        assert!(tr.len() <= 4);
    }

    #[test]
    fn zero_alu_is_a_noop() {
        let mut t = Tracer::new();
        t.alu(0);
        assert!(t.finish().is_empty());
    }

    #[test]
    fn label_is_preserved() {
        let t = Tracer::with_label("sv");
        assert_eq!(t.finish().label, "sv");
    }
}
