//! Deterministic virtual address space.
//!
//! Traced memory operations must carry addresses so the simulated cache
//! hierarchy sees realistic set-index distributions, spatial locality and
//! sharing patterns. Real pointer values would make traces non-deterministic
//! across runs, so every buffer used by instrumented workload code is placed
//! in a synthetic 64-bit address space managed by [`AddrSpace`].
//!
//! Layout conventions (mirroring a classic Linux/x86 process image):
//!
//! * `0x0040_0000..` — code (synthetic program counters, see [`crate::code`])
//! * `0x0800_0000..` — static/read-only data (schemas, routing tables)
//! * `0x1000_0000..` — heap (message buffers, DOM arenas, socket buffers)
//! * `0x7f00_0000..` — stacks
//!
//! [`AddrSpace`] is a simple bump allocator with alignment; it never frees.
//! Callers that want "fresh" buffers per message (to model streaming data
//! with no temporal reuse) allocate from a rotating window instead of
//! reusing one allocation — see `aon-sim`'s buffer pools.

/// A virtual address in the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VAddr(pub u64);

impl VAddr {
    /// Null address; never allocated by [`AddrSpace`].
    pub const NULL: VAddr = VAddr(0);

    /// Byte offset addition.
    #[inline]
    pub fn offset(self, off: u64) -> VAddr {
        VAddr(self.0 + off)
    }

    /// The cache line index of this address for a given line size.
    ///
    /// `line_size` must be a power of two.
    #[inline]
    pub fn line(self, line_size: u64) -> u64 {
        debug_assert!(line_size.is_power_of_two());
        self.0 / line_size
    }
}

impl core::fmt::Display for VAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

/// Base of the synthetic code segment.
pub const CODE_BASE: u64 = 0x0040_0000;
/// Base of the static data segment.
pub const STATIC_BASE: u64 = 0x0800_0000;
/// Base of the heap segment.
pub const HEAP_BASE: u64 = 0x1000_0000;
/// Base of the stack segment.
pub const STACK_BASE: u64 = 0x7f00_0000;

/// Deterministic bump allocator over the simulated address space.
///
/// One `AddrSpace` models one process image. Distinct simulated processes
/// (e.g. `netperf` and `netserver` in loopback mode) may use distinct
/// `AddrSpace`s offset from each other, or share one when they share kernel
/// buffers.
#[derive(Debug, Clone)]
pub struct AddrSpace {
    next_static: u64,
    next_heap: u64,
    next_stack: u64,
}

impl Default for AddrSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrSpace {
    /// A fresh address space with canonical segment bases.
    pub fn new() -> Self {
        AddrSpace { next_static: STATIC_BASE, next_heap: HEAP_BASE, next_stack: STACK_BASE }
    }

    fn bump(cursor: &mut u64, len: u64, align: u64) -> VAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let base = (*cursor + align - 1) & !(align - 1);
        *cursor = base + len.max(1);
        VAddr(base)
    }

    /// Allocate `len` bytes of static (long-lived, shared) data.
    pub fn alloc_static(&mut self, len: u64, align: u64) -> VAddr {
        Self::bump(&mut self.next_static, len, align)
    }

    /// Allocate `len` bytes of heap data.
    pub fn alloc_heap(&mut self, len: u64, align: u64) -> VAddr {
        Self::bump(&mut self.next_heap, len, align)
    }

    /// Allocate a stack area of `len` bytes, returning its base.
    pub fn alloc_stack(&mut self, len: u64) -> VAddr {
        Self::bump(&mut self.next_stack, len, 4096)
    }

    /// Current heap watermark (useful in tests).
    pub fn heap_watermark(&self) -> u64 {
        self.next_heap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_respects_alignment() {
        let mut a = AddrSpace::new();
        let x = a.alloc_heap(3, 1);
        let y = a.alloc_heap(10, 64);
        assert_eq!(x.0, HEAP_BASE);
        assert_eq!(y.0 % 64, 0);
        assert!(y.0 >= x.0 + 3);
    }

    #[test]
    fn segments_are_disjoint() {
        let mut a = AddrSpace::new();
        let s = a.alloc_static(1 << 20, 64);
        let h = a.alloc_heap(1 << 20, 64);
        let k = a.alloc_stack(1 << 16);
        assert!(s.0 < h.0);
        assert!(h.0 < k.0);
    }

    #[test]
    fn deterministic_across_instances() {
        let mut a = AddrSpace::new();
        let mut b = AddrSpace::new();
        for _ in 0..100 {
            assert_eq!(a.alloc_heap(123, 8), b.alloc_heap(123, 8));
        }
    }

    #[test]
    fn line_index() {
        assert_eq!(VAddr(0).line(64), 0);
        assert_eq!(VAddr(63).line(64), 0);
        assert_eq!(VAddr(64).line(64), 1);
        assert_eq!(VAddr(130).line(64), 2);
    }

    #[test]
    fn zero_len_allocations_advance() {
        let mut a = AddrSpace::new();
        let x = a.alloc_heap(0, 1);
        let y = a.alloc_heap(0, 1);
        assert_ne!(x, y, "zero-length allocations must still be distinct");
    }
}
