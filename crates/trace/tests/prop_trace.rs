//! Property tests for the tracing substrate.

use aon_trace::op::{Addr, Op, RegionSlot};
use aon_trace::trace::{Binding, Trace};
use aon_trace::{mix::Mix, VAddr};
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u16..500).prop_map(Op::Alu),
        (0u8..16, 0u32..100_000, prop_oneof![Just(1u8), Just(4), Just(8)]).prop_map(
            |(slot, off, size)| Op::Load { addr: Addr::new(RegionSlot(slot), off), size }
        ),
        (0u8..16, 0u32..100_000, prop_oneof![Just(1u8), Just(4), Just(8)]).prop_map(
            |(slot, off, size)| Op::Store { addr: Addr::new(RegionSlot(slot), off), size }
        ),
        (any::<u32>(), any::<bool>()).prop_map(|(site, taken)| Op::Branch { site, taken }),
        any::<u32>().prop_map(|site| Op::Jump { site }),
    ]
}

proptest! {
    #[test]
    fn stats_count_every_op_exactly_once(ops in prop::collection::vec(arb_op(), 0..400)) {
        let mut t = Trace::default();
        let mut expected_ops = 0u64;
        let mut expected_branches = 0u64;
        let mut expected_loads = 0u64;
        for op in &ops {
            expected_ops += op.weight();
            match op {
                Op::Branch { .. } => expected_branches += 1,
                Op::Load { .. } => expected_loads += 1,
                _ => {}
            }
            t.push(*op);
        }
        let s = t.stats();
        prop_assert_eq!(s.ops, expected_ops);
        prop_assert_eq!(s.branches, expected_branches);
        prop_assert_eq!(s.loads, expected_loads);
        // Coalescing never grows the record count.
        prop_assert!(t.len() <= ops.len());
    }

    #[test]
    fn alu_coalescing_preserves_totals(runs in prop::collection::vec(1u16..1000, 1..100)) {
        let mut coalesced = Trace::default();
        let mut split = Trace::default();
        for &n in &runs {
            coalesced.push(Op::Alu(n));
            // Same work, pushed one op at a time.
            for _ in 0..n {
                split.push(Op::Alu(1));
            }
        }
        prop_assert_eq!(coalesced.stats().alus, split.stats().alus);
        prop_assert_eq!(coalesced.stats().ops, split.stats().ops);
    }

    #[test]
    fn binding_resolution_is_affine(
        slot in 0u8..16,
        base in 0u64..u32::MAX as u64,
        off_a in 0u32..1_000_000,
        off_b in 0u32..1_000_000,
    ) {
        let mut b = Binding::new();
        b.bind(RegionSlot(slot), VAddr(base));
        let ra = b.resolve(Addr::new(RegionSlot(slot), off_a)).0;
        let rb = b.resolve(Addr::new(RegionSlot(slot), off_b)).0;
        prop_assert_eq!(ra - base, off_a as u64);
        // Address deltas equal offset deltas.
        prop_assert_eq!(ra as i128 - rb as i128, off_a as i128 - off_b as i128);
    }

    #[test]
    fn mix_fractions_always_normalized(ops in prop::collection::vec(arb_op(), 0..300)) {
        let mut t = Trace::default();
        for op in ops {
            t.push(op);
        }
        let m = Mix::of(&t);
        prop_assert!(m.is_normalized());
        prop_assert!(m.taken_ratio >= 0.0 && m.taken_ratio <= 1.0);
    }

    #[test]
    fn extend_from_equals_sequential_push(
        a in prop::collection::vec(arb_op(), 0..150),
        b in prop::collection::vec(arb_op(), 0..150),
    ) {
        let mut left = Trace::default();
        for op in a.iter().chain(&b) {
            left.push(*op);
        }
        let mut right = Trace::default();
        for op in &a {
            right.push(*op);
        }
        let mut tail = Trace::default();
        for op in &b {
            tail.push(*op);
        }
        right.extend_from(&tail);
        prop_assert_eq!(left.stats(), right.stats());
    }
}
