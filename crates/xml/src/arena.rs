//! Per-request working-memory arena.
//!
//! DOM nodes, decoded strings and token scratch all live in one bump arena
//! mapped to [`RegionSlot::WORK`]. The arena tracks a byte watermark so
//! every allocated object has a deterministic region offset; object field
//! writes are traced as stores at those offsets, and later traversals load
//! from the same offsets — giving the simulator a faithful picture of DOM
//! locality (sequentially allocated siblings are spatially adjacent, just
//! like a real arena-allocating XML engine such as libxml2's dict/arena).

use aon_trace::{Addr, Probe, RegionSlot};

/// Bump allocator over a relocatable region.
#[derive(Debug, Clone)]
pub struct Arena {
    slot: RegionSlot,
    watermark: u32,
}

impl Default for Arena {
    fn default() -> Self {
        Self::new()
    }
}

impl Arena {
    /// A fresh arena in [`RegionSlot::WORK`].
    pub fn new() -> Self {
        Arena { slot: RegionSlot::WORK, watermark: 0 }
    }

    /// A fresh arena in a caller-chosen region.
    pub fn in_slot(slot: RegionSlot) -> Self {
        Arena { slot, watermark: 0 }
    }

    /// The region this arena allocates in.
    pub fn slot(&self) -> RegionSlot {
        self.slot
    }

    /// Bytes allocated so far.
    pub fn used(&self) -> u32 {
        self.watermark
    }

    /// Allocate `len` bytes aligned to `align`; returns the region offset.
    /// Emits the allocation-path work (pointer bump + limit check) on the
    /// probe but no memory traffic — callers trace their own initializing
    /// stores.
    pub fn alloc<P: Probe>(&mut self, len: u32, align: u32, p: &mut P) -> u32 {
        debug_assert!(align.is_power_of_two());
        let off = (self.watermark + align - 1) & !(align - 1);
        self.watermark = off + len;
        p.alu(2); // bump + limit check
        off
    }

    /// The traced address of `offset` within this arena.
    #[inline]
    pub fn addr(&self, offset: u32) -> Addr {
        Addr::new(self.slot, offset)
    }

    /// Copy `bytes` into the arena, tracing one store per 8-byte word (the
    /// loads from the source are the caller's responsibility — usually the
    /// bytes were just scanned from a [`TBuf`](crate::TBuf)). Returns the
    /// region offset of the copy.
    pub fn store_bytes<P: Probe>(&mut self, bytes: &[u8], p: &mut P) -> u32 {
        let off = self.alloc(bytes.len() as u32, 8, p);
        let words = (bytes.len() as u32).div_ceil(8);
        for w in 0..words {
            p.store(Addr::new(self.slot, off + w * 8), 8);
            p.alu(1);
        }
        off
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::{NullProbe, Tracer};

    #[test]
    fn alloc_respects_alignment_and_order() {
        let mut a = Arena::new();
        let mut p = NullProbe;
        let x = a.alloc(3, 1, &mut p);
        let y = a.alloc(8, 8, &mut p);
        assert_eq!(x, 0);
        assert_eq!(y % 8, 0);
        assert!(y >= 3);
        assert_eq!(a.used(), y + 8);
    }

    #[test]
    fn store_bytes_traces_word_stores() {
        let mut a = Arena::new();
        let mut t = Tracer::new();
        let off = a.store_bytes(b"0123456789abcdef0", &mut t); // 17 bytes -> 3 words
        assert_eq!(off, 0);
        assert_eq!(t.finish().stats().stores, 3);
    }

    #[test]
    fn custom_slot() {
        let a = Arena::in_slot(RegionSlot::STATIC);
        assert_eq!(a.slot(), RegionSlot::STATIC);
        assert_eq!(a.addr(16).slot, RegionSlot::STATIC);
    }
}
