//! Arena-allocated DOM.
//!
//! Nodes live in a flat `Vec` and link to each other by index — the classic
//! arena DOM a 2006-era C XML engine would use. Each node also has a
//! deterministic region offset inside [`RegionSlot::WORK`], so traced
//! traversals (`first_child_t`, `next_sibling_t`, …) emit loads at the
//! addresses the node fields would occupy in memory, and the simulator sees
//! the true locality of a depth-first walk over sequentially allocated
//! nodes.
//!
//! Region layout inside `WORK`:
//!
//! * `0       ..  8 MiB` — node records, 32 bytes each
//! * `8 MiB   .. 12 MiB` — attribute records, 16 bytes each
//! * `12 MiB  ..       ` — string arena (names, decoded text)

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use aon_trace::{Addr, Probe, RegionSlot};
use std::collections::HashMap;

/// Size of one node record in the simulated arena.
pub const NODE_SIZE: u32 = 32;
/// Base region offset of attribute records.
pub const ATTR_BASE: u32 = 8 << 20;
/// Size of one attribute record.
pub const ATTR_SIZE: u32 = 16;
/// Base region offset of the string arena.
pub const STR_BASE: u32 = 12 << 20;

/// Index of a node in the document arena.
///
/// Two special encodings exist for XPath: the virtual *document node*
/// ([`NodeId::DOCUMENT`]), which is the context of absolute paths and whose
/// only child is the root element, and *attribute pseudo-nodes*
/// ([`NodeId::attr`]), which reference attribute records so attribute-axis
/// results carry value semantics. Ordinary DOM traversal never produces
/// either.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// High bit marks attribute pseudo-nodes.
    const ATTR_BIT: u32 = 0x8000_0000;
    /// The virtual document node.
    pub const DOCUMENT: NodeId = NodeId(0x7fff_ffff);

    /// Pseudo-node for attribute record `i`.
    pub fn attr(i: u32) -> NodeId {
        debug_assert!(i < Self::ATTR_BIT);
        NodeId(Self::ATTR_BIT | i)
    }

    /// Is this an attribute pseudo-node?
    pub fn is_attr(self) -> bool {
        self.0 & Self::ATTR_BIT != 0
    }

    /// The attribute record index (only valid if [`NodeId::is_attr`]).
    pub fn attr_index(self) -> u32 {
        self.0 & !Self::ATTR_BIT
    }

    /// Is this the virtual document node?
    pub fn is_document(self) -> bool {
        self == Self::DOCUMENT
    }
}

/// Interned name id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameId(pub u32);

/// A span in the document's string arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrRef {
    /// Offset into the document's string arena.
    pub off: u32,
    /// Length in bytes.
    pub len: u32,
}

impl StrRef {
    /// The empty string.
    pub const EMPTY: StrRef = StrRef { off: 0, len: 0 };
}

/// Node payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An element with an interned name.
    Element(NameId),
    /// A text node.
    Text(StrRef),
    /// A comment (content dropped).
    Comment,
    /// A processing instruction (target kept, data dropped).
    Pi(StrRef),
}

/// One DOM node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Payload.
    pub kind: NodeKind,
    /// Parent node, if any.
    pub parent: Option<NodeId>,
    /// First child, if any.
    pub first_child: Option<NodeId>,
    /// Last child, if any (O(1) append).
    pub last_child: Option<NodeId>,
    /// Next sibling, if any.
    pub next_sibling: Option<NodeId>,
    /// Attribute records `attrs[attr_start..attr_end]` (elements only).
    pub attr_start: u32,
    /// End of this element's attribute range.
    pub attr_end: u32,
}

/// One attribute.
#[derive(Debug, Clone, Copy)]
pub struct AttrRec {
    /// Interned attribute name.
    pub name: NameId,
    /// Decoded value.
    pub value: StrRef,
}

/// A parsed XML document.
#[derive(Debug, Default)]
pub struct Document {
    nodes: Vec<Node>,
    attrs: Vec<AttrRec>,
    bytes: Vec<u8>,
    names: Vec<StrRef>,
    name_lookup: HashMap<Vec<u8>, NameId>,
    root: Option<NodeId>,
}

impl Document {
    /// An empty document.
    pub fn new() -> Self {
        Document::default()
    }

    /// The root element. Errors if the document has none.
    pub fn root(&self) -> XmlResult<NodeId> {
        self.root.ok_or(XmlError::at(XmlErrorKind::NoRoot, 0))
    }

    /// Set the root element (used by the parser).
    pub(crate) fn set_root(&mut self, id: NodeId) {
        self.root = Some(id);
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of attributes across all elements.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Borrow a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// The region address of field `field_off` of node `id`.
    #[inline]
    pub fn node_addr(&self, id: NodeId, field_off: u32) -> Addr {
        Addr::new(RegionSlot::WORK, id.0 * NODE_SIZE + field_off)
    }

    /// The region address of attribute record `i`.
    #[inline]
    pub fn attr_addr(&self, i: u32, field_off: u32) -> Addr {
        Addr::new(RegionSlot::WORK, ATTR_BASE + i * ATTR_SIZE + field_off)
    }

    /// The region address of string-arena offset `off`.
    #[inline]
    pub fn str_addr(&self, off: u32) -> Addr {
        Addr::new(RegionSlot::WORK, STR_BASE + off)
    }

    /// Append a node; returns its id. Emits the arena-write stores.
    pub(crate) fn push_node<P: Probe>(&mut self, node: Node, p: &mut P) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        // Initializing the 32-byte record: four 8-byte stores.
        for w in 0..4 {
            p.store(self.node_addr(id, w * 8), 8);
        }
        p.alu(4);
        id
    }

    /// Append an attribute record. Emits the arena-write stores.
    pub(crate) fn push_attr<P: Probe>(&mut self, attr: AttrRec, p: &mut P) -> u32 {
        let i = self.attrs.len() as u32;
        self.attrs.push(attr);
        p.store(self.attr_addr(i, 0), 8);
        p.store(self.attr_addr(i, 8), 8);
        p.alu(2);
        i
    }

    /// Link `child` as the last child of `parent`. Emits the pointer-update
    /// loads/stores.
    pub(crate) fn append_child<P: Probe>(&mut self, parent: NodeId, child: NodeId, p: &mut P) {
        p.load(self.node_addr(parent, 12), 4); // read last_child
        let last = self.nodes[parent.0 as usize].last_child;
        match last {
            Some(prev) => {
                p.store(self.node_addr(prev, 16), 4); // prev.next_sibling = child
                self.nodes[prev.0 as usize].next_sibling = Some(child);
            }
            None => {
                p.store(self.node_addr(parent, 8), 4); // parent.first_child = child
                self.nodes[parent.0 as usize].first_child = Some(child);
            }
        }
        p.store(self.node_addr(parent, 12), 4); // parent.last_child = child
        p.store(self.node_addr(child, 4), 4); // child.parent = parent
        p.alu(3);
        self.nodes[parent.0 as usize].last_child = Some(child);
        self.nodes[child.0 as usize].parent = Some(parent);
    }

    /// Copy `bytes` into the string arena (stores traced, one per word) and
    /// return a reference.
    pub(crate) fn intern_bytes<P: Probe>(&mut self, bytes: &[u8], p: &mut P) -> StrRef {
        let off = self.bytes.len() as u32;
        self.bytes.extend_from_slice(bytes);
        let words = (bytes.len() as u32).div_ceil(8);
        for w in 0..words {
            p.store(self.str_addr(off + w * 8), 8);
            p.alu(1);
        }
        StrRef { off, len: bytes.len() as u32 }
    }

    /// Set the attribute range of an element (used by the parser after
    /// pushing the element's attribute records).
    pub(crate) fn set_attr_range(&mut self, id: NodeId, start: u32, end: u32) {
        let n = &mut self.nodes[id.0 as usize];
        n.attr_start = start;
        n.attr_end = end;
    }

    /// Intern a name: FNV hash over the bytes (one ALU per byte), a hash
    /// table probe (one load), and on a miss a copy into the string arena.
    pub(crate) fn intern_name<P: Probe>(&mut self, name: &[u8], p: &mut P) -> NameId {
        p.alu(name.len() as u32); // hashing
        p.load(Addr::new(RegionSlot::WORK, STR_BASE), 8); // bucket probe
        if let Some(&id) = self.name_lookup.get(name) {
            // Hit: verify with a compare over the interned bytes.
            p.alu((name.len() as u32).div_ceil(8) + 1);
            return id;
        }
        let sref = self.intern_bytes(name, p);
        let id = NameId(self.names.len() as u32);
        self.names.push(sref);
        self.name_lookup.insert(name.to_vec(), id);
        id
    }

    /// The bytes of a string reference.
    pub fn str_bytes(&self, s: StrRef) -> &[u8] {
        &self.bytes[s.off as usize..(s.off + s.len) as usize]
    }

    /// The bytes of an interned name.
    pub fn name_bytes(&self, id: NameId) -> &[u8] {
        self.str_bytes(self.names[id.0 as usize])
    }

    /// Look up a name id without interning (returns `None` if the name never
    /// appeared in the document).
    pub fn find_name(&self, name: &[u8]) -> Option<NameId> {
        self.name_lookup.get(name).copied()
    }

    // ------------------------------------------------------------------
    // Traced traversal accessors (used by XPath / schema validation).
    // ------------------------------------------------------------------

    /// Read `kind` discriminant + payload (traced).
    pub fn kind_t<P: Probe>(&self, id: NodeId, p: &mut P) -> NodeKind {
        p.load(self.node_addr(id, 0), 4);
        self.nodes[id.0 as usize].kind
    }

    /// Read `first_child` (traced).
    pub fn first_child_t<P: Probe>(&self, id: NodeId, p: &mut P) -> Option<NodeId> {
        p.load(self.node_addr(id, 8), 4);
        self.nodes[id.0 as usize].first_child
    }

    /// Read `next_sibling` (traced).
    pub fn next_sibling_t<P: Probe>(&self, id: NodeId, p: &mut P) -> Option<NodeId> {
        p.load(self.node_addr(id, 16), 4);
        self.nodes[id.0 as usize].next_sibling
    }

    /// Read `parent` (traced).
    pub fn parent_t<P: Probe>(&self, id: NodeId, p: &mut P) -> Option<NodeId> {
        p.load(self.node_addr(id, 4), 4);
        self.nodes[id.0 as usize].parent
    }

    /// Attribute records of an element (traced range read).
    pub fn attrs_t<P: Probe>(&self, id: NodeId, p: &mut P) -> &[AttrRec] {
        p.load(self.node_addr(id, 20), 8);
        let n = &self.nodes[id.0 as usize];
        &self.attrs[n.attr_start as usize..n.attr_end as usize]
    }

    /// Compare an element's name with `expect`, tracing the name load and
    /// byte compare. Non-elements compare unequal.
    pub fn name_is_t<P: Probe>(&self, id: NodeId, expect: &[u8], p: &mut P) -> bool {
        match self.kind_t(id, p) {
            NodeKind::Element(name) => {
                let bytes = self.name_bytes(name);
                // Length check then word compare.
                p.alu(1);
                if bytes.len() != expect.len() {
                    return false;
                }
                let words = (bytes.len() as u32).div_ceil(8);
                p.load(self.str_addr(self.names[name.0 as usize].off), 8);
                p.alu(words * 2);
                bytes == expect
            }
            _ => false,
        }
    }

    /// The text bytes of a *text* node (traced word loads). Returns an empty
    /// vector for non-text nodes.
    pub fn text_bytes_t<P: Probe>(&self, id: NodeId, p: &mut P) -> Vec<u8> {
        match self.kind_t(id, p) {
            NodeKind::Text(s) => {
                let words = s.len.div_ceil(8);
                for w in 0..words {
                    p.load(self.str_addr(s.off + w * 8), 8);
                }
                p.alu(words + 1);
                self.str_bytes(s).to_vec()
            }
            _ => Vec::new(),
        }
    }

    /// Concatenated text of all direct text children (traced traversal).
    pub fn text_of_t<P: Probe>(&self, id: NodeId, p: &mut P) -> Vec<u8> {
        let mut out = Vec::new();
        let mut cur = self.first_child_t(id, p);
        while let Some(c) = cur {
            if let NodeKind::Text(s) = self.kind_t(c, p) {
                // Read the text bytes, word at a time.
                let words = s.len.div_ceil(8);
                for w in 0..words {
                    p.load(self.str_addr(s.off + w * 8), 8);
                }
                p.alu(words + 1);
                out.extend_from_slice(self.str_bytes(s));
            }
            cur = self.next_sibling_t(c, p);
        }
        out
    }

    /// The attribute record backing an attribute pseudo-node.
    pub fn attr_rec(&self, id: NodeId) -> AttrRec {
        debug_assert!(id.is_attr());
        self.attrs[id.attr_index() as usize]
    }

    /// Attribute pseudo-node ids of an element, optionally filtered by name
    /// (traced scan over the attribute records).
    pub fn attr_nodes_t<P: Probe>(
        &self,
        id: NodeId,
        name: Option<&[u8]>,
        p: &mut P,
    ) -> Vec<NodeId> {
        if id.is_attr() || id.is_document() {
            return Vec::new();
        }
        let n = &self.nodes[id.0 as usize];
        p.load(self.node_addr(id, 20), 8);
        let mut out = Vec::new();
        for i in n.attr_start..n.attr_end {
            p.load(self.attr_addr(i, 0), 8);
            p.alu(2);
            let rec = self.attrs[i as usize];
            match name {
                Some(want) => {
                    if self.name_bytes(rec.name) == want {
                        out.push(NodeId::attr(i));
                    }
                }
                None => out.push(NodeId::attr(i)),
            }
        }
        out
    }

    /// Find the first attribute with the given name (traced scan).
    pub fn attr_value_t<P: Probe>(&self, id: NodeId, name: &[u8], p: &mut P) -> Option<StrRef> {
        let n = &self.nodes[id.0 as usize];
        let (start, end) = (n.attr_start, n.attr_end);
        p.load(self.node_addr(id, 20), 8);
        for i in start..end {
            p.load(self.attr_addr(i, 0), 8);
            p.alu(2);
            let rec = self.attrs[i as usize];
            if self.name_bytes(rec.name) == name {
                return Some(rec.value);
            }
        }
        None
    }

    /// Depth-first pre-order iterator over all node ids (untraced; tests and
    /// native tooling).
    pub fn descendants(&self, from: NodeId) -> Descendants<'_> {
        Descendants { doc: self, stack: vec![from] }
    }
}

/// Iterator for [`Document::descendants`].
pub struct Descendants<'d> {
    doc: &'d Document,
    stack: Vec<NodeId>,
}

impl Iterator for Descendants<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let id = self.stack.pop()?;
        // Push children in reverse so iteration is document order.
        let mut children = Vec::new();
        let mut c = self.doc.node(id).first_child;
        while let Some(cid) = c {
            children.push(cid);
            c = self.doc.node(cid).next_sibling;
        }
        while let Some(cid) = children.pop() {
            self.stack.push(cid);
        }
        Some(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::NullProbe;

    fn elem(doc: &mut Document, name: &[u8]) -> NodeId {
        let nm = doc.intern_name(name, &mut NullProbe);
        doc.push_node(
            Node {
                kind: NodeKind::Element(nm),
                parent: None,
                first_child: None,
                last_child: None,
                next_sibling: None,
                attr_start: 0,
                attr_end: 0,
            },
            &mut NullProbe,
        )
    }

    #[test]
    fn build_and_traverse() {
        let mut doc = Document::new();
        let root = elem(&mut doc, b"root");
        let a = elem(&mut doc, b"a");
        let b = elem(&mut doc, b"b");
        doc.append_child(root, a, &mut NullProbe);
        doc.append_child(root, b, &mut NullProbe);
        doc.set_root(root);

        let mut p = NullProbe;
        assert_eq!(doc.first_child_t(root, &mut p), Some(a));
        assert_eq!(doc.next_sibling_t(a, &mut p), Some(b));
        assert_eq!(doc.next_sibling_t(b, &mut p), None);
        assert_eq!(doc.parent_t(b, &mut p), Some(root));
        assert!(doc.name_is_t(a, b"a", &mut p));
        assert!(!doc.name_is_t(a, b"b", &mut p));
    }

    #[test]
    fn interning_dedupes() {
        let mut doc = Document::new();
        let x = doc.intern_name(b"quantity", &mut NullProbe);
        let y = doc.intern_name(b"quantity", &mut NullProbe);
        let z = doc.intern_name(b"price", &mut NullProbe);
        assert_eq!(x, y);
        assert_ne!(x, z);
        assert_eq!(doc.name_bytes(x), b"quantity");
    }

    #[test]
    fn text_concatenation() {
        let mut doc = Document::new();
        let root = elem(&mut doc, b"r");
        let s1 = doc.intern_bytes(b"hello ", &mut NullProbe);
        let t1 = doc.push_node(
            Node {
                kind: NodeKind::Text(s1),
                parent: None,
                first_child: None,
                last_child: None,
                next_sibling: None,
                attr_start: 0,
                attr_end: 0,
            },
            &mut NullProbe,
        );
        let s2 = doc.intern_bytes(b"world", &mut NullProbe);
        let t2 = doc.push_node(
            Node {
                kind: NodeKind::Text(s2),
                parent: None,
                first_child: None,
                last_child: None,
                next_sibling: None,
                attr_start: 0,
                attr_end: 0,
            },
            &mut NullProbe,
        );
        doc.append_child(root, t1, &mut NullProbe);
        doc.append_child(root, t2, &mut NullProbe);
        assert_eq!(doc.text_of_t(root, &mut NullProbe), b"hello world");
    }

    #[test]
    fn descendants_pre_order() {
        let mut doc = Document::new();
        let root = elem(&mut doc, b"r");
        let a = elem(&mut doc, b"a");
        let b = elem(&mut doc, b"b");
        let c = elem(&mut doc, b"c");
        doc.append_child(root, a, &mut NullProbe);
        doc.append_child(a, b, &mut NullProbe);
        doc.append_child(root, c, &mut NullProbe);
        let order: Vec<NodeId> = doc.descendants(root).collect();
        assert_eq!(order, vec![root, a, b, c]);
    }

    #[test]
    fn missing_root_errors() {
        let doc = Document::new();
        assert!(doc.root().is_err());
    }

    #[test]
    fn node_addresses_are_disjoint_per_node() {
        let mut doc = Document::new();
        let a = elem(&mut doc, b"a");
        let b = elem(&mut doc, b"b");
        let aa = doc.node_addr(a, 0).offset;
        let ba = doc.node_addr(b, 0).offset;
        assert_eq!(ba - aa, NODE_SIZE);
    }
}
