//! Error types for the XML substrate.

use std::fmt;

/// What went wrong while processing XML.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum XmlErrorKind {
    /// Input ended in the middle of a construct.
    UnexpectedEof,
    /// A byte that cannot start or continue the current construct.
    UnexpectedByte,
    /// Malformed tag syntax (`<`, name, attributes, `>`).
    MalformedTag,
    /// Close tag does not match the open tag.
    MismatchedTag,
    /// Malformed or unsupported entity reference.
    BadEntity,
    /// Attribute without a properly quoted value.
    BadAttribute,
    /// More than one root element, or content outside the root.
    ExtraContent,
    /// Document contains no root element.
    NoRoot,
    /// Malformed processing instruction or declaration.
    BadPi,
    /// Malformed comment (`--` inside, missing `-->`).
    BadComment,
    /// Malformed CDATA section.
    BadCdata,
    /// Nesting deeper than the configured limit.
    TooDeep,
    /// XPath expression syntax error.
    XPathSyntax,
    /// Schema definition is malformed or uses an unsupported construct.
    BadSchema,
}

impl fmt::Display for XmlErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            XmlErrorKind::UnexpectedEof => "unexpected end of input",
            XmlErrorKind::UnexpectedByte => "unexpected byte",
            XmlErrorKind::MalformedTag => "malformed tag",
            XmlErrorKind::MismatchedTag => "mismatched close tag",
            XmlErrorKind::BadEntity => "bad entity reference",
            XmlErrorKind::BadAttribute => "bad attribute",
            XmlErrorKind::ExtraContent => "content outside root element",
            XmlErrorKind::NoRoot => "no root element",
            XmlErrorKind::BadPi => "bad processing instruction",
            XmlErrorKind::BadComment => "bad comment",
            XmlErrorKind::BadCdata => "bad CDATA section",
            XmlErrorKind::TooDeep => "nesting too deep",
            XmlErrorKind::XPathSyntax => "XPath syntax error",
            XmlErrorKind::BadSchema => "bad schema definition",
        };
        f.write_str(s)
    }
}

/// An error with the byte offset where it was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XmlError {
    /// The kind of failure.
    pub kind: XmlErrorKind,
    /// Byte offset in the input where the failure was detected.
    pub offset: usize,
}

impl XmlError {
    /// Construct an error at `offset`.
    pub fn at(kind: XmlErrorKind, offset: usize) -> Self {
        XmlError { kind, offset }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.kind, self.offset)
    }
}

impl std::error::Error for XmlError {}

/// Convenience alias used across the crate.
pub type XmlResult<T> = Result<T, XmlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset() {
        let e = XmlError::at(XmlErrorKind::MalformedTag, 17);
        assert_eq!(e.to_string(), "malformed tag at byte 17");
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&XmlError::at(XmlErrorKind::NoRoot, 0));
    }
}
