//! Instrumented input buffers.
//!
//! A [`TBuf`] wraps a byte slice together with the relocatable region slot
//! the bytes notionally live in (usually [`RegionSlot::MSG`] — the incoming
//! message buffer). Every byte examined through the accessor methods emits a
//! load on the probe, so the lexer's byte-by-byte scanning shows up in the
//! trace with the exact spatial locality of the real buffer.

use aon_trace::{Addr, Probe, RegionSlot};

/// A byte buffer whose reads are traced.
#[derive(Debug, Clone, Copy)]
pub struct TBuf<'a> {
    data: &'a [u8],
    slot: RegionSlot,
    /// Offset of `data[0]` within the region (for sub-buffers).
    base: u32,
}

impl<'a> TBuf<'a> {
    /// Wrap `data` as the contents of `slot` starting at region offset 0.
    pub fn new(data: &'a [u8], slot: RegionSlot) -> Self {
        assert!(data.len() <= u32::MAX as usize, "buffer too large to trace");
        TBuf { data, slot, base: 0 }
    }

    /// Wrap message-buffer bytes (the common case).
    pub fn msg(data: &'a [u8]) -> Self {
        Self::new(data, RegionSlot::MSG)
    }

    /// Number of bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The region slot these bytes live in.
    #[inline]
    pub fn slot(&self) -> RegionSlot {
        self.slot
    }

    /// The traced address of byte `i`.
    #[inline]
    pub fn addr(&self, i: usize) -> Addr {
        Addr::new(self.slot, self.base + i as u32)
    }

    /// Read byte `i`, tracing the load. Panics if out of bounds (callers
    /// bound-check with [`TBuf::len`], which is a register compare, not a
    /// memory access).
    #[inline]
    pub fn get<P: Probe>(&self, i: usize, p: &mut P) -> u8 {
        p.load(self.addr(i), 1);
        self.data[i]
    }

    /// Read byte `i` if in bounds, tracing the load when it happens.
    #[inline]
    pub fn try_get<P: Probe>(&self, i: usize, p: &mut P) -> Option<u8> {
        if i < self.data.len() {
            Some(self.get(i, p))
        } else {
            None
        }
    }

    /// The untraced underlying bytes (for slicing out results whose bytes
    /// were already traced during scanning — e.g. a token's text).
    #[inline]
    pub fn raw(&self) -> &'a [u8] {
        self.data
    }

    /// Untraced range access for already-scanned spans.
    #[inline]
    pub fn span(&self, start: usize, end: usize) -> &'a [u8] {
        &self.data[start..end]
    }

    /// A sub-buffer view of `start..end` that keeps region addressing
    /// consistent with the parent buffer.
    pub fn slice(&self, start: usize, end: usize) -> TBuf<'a> {
        TBuf { data: &self.data[start..end], slot: self.slot, base: self.base + start as u32 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::{NullProbe, Tracer};

    #[test]
    fn get_traces_loads_at_right_addresses() {
        let mut t = Tracer::new();
        let b = TBuf::msg(b"hello");
        assert_eq!(b.get(1, &mut t), b'e');
        assert_eq!(b.get(4, &mut t), b'o');
        let tr = t.finish();
        assert_eq!(tr.stats().loads, 2);
        match tr.ops()[0] {
            aon_trace::Op::Load { addr, size } => {
                assert_eq!(addr.slot, RegionSlot::MSG);
                assert_eq!(addr.offset, 1);
                assert_eq!(size, 1);
            }
            ref other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn slice_preserves_region_offsets() {
        let mut t = Tracer::new();
        let b = TBuf::msg(b"abcdef");
        let s = b.slice(2, 5);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0, &mut t), b'c');
        let tr = t.finish();
        match tr.ops()[0] {
            aon_trace::Op::Load { addr, .. } => assert_eq!(addr.offset, 2),
            ref other => panic!("expected load, got {other:?}"),
        }
    }

    #[test]
    fn try_get_out_of_bounds_is_silent() {
        let mut t = Tracer::new();
        let b = TBuf::msg(b"x");
        assert_eq!(b.try_get(5, &mut t), None);
        assert!(t.finish().is_empty());
    }

    #[test]
    fn works_with_null_probe() {
        let mut p = NullProbe;
        let b = TBuf::msg(b"xy");
        assert_eq!(b.get(0, &mut p), b'x');
    }
}
