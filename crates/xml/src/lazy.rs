//! Lazy-span DOM for the fast (untraced) parse path.
//!
//! [`parse_document_lazy`] is the serving-path twin of
//! [`crate::parser::parse_with_options`]: same token stream discipline
//! (via [`Lexer::next_token_fast`]), same structural checks, same errors
//! (kind *and* offset) — but text and attribute values stay as *undecoded
//! spans into the input buffer*. Entity-bearing values are validated at
//! parse time (so malformed references fail exactly where the eager parser
//! fails) and only materialized — decoded into an owned buffer — on first
//! access. FR/DPI-style consumers that never look at values pay no string
//! copies at all; CBR/SV consumers touch a handful of values per message.
//!
//! The traced arena [`crate::dom::Document`] is untouched: it remains the
//! simulator's counter reference. The differential suite in `tests/`
//! asserts shape-and-content equivalence between the two.

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::lexer::{decode_text_fast, validate_entities_fast, Lexer, Span, Token};
use crate::parser::ParseOptions;
use std::cell::OnceCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a for the name-intern table: names are short, and FNV beats the
/// default SipHash on sub-16-byte keys without pulling in a dependency.
#[derive(Default)]
pub struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 { 0xcbf2_9ce4_8422_2325 } else { self.0 };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvBuild = BuildHasherDefault<Fnv1a>;

/// Index of a node in the lazy arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LazyId(pub u32);

/// Interned name id (per-document, dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LazyName(pub u32);

/// An undecoded value: a span of the input, plus how to materialize it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValRef {
    /// No entity references: the value *is* the input span.
    Raw {
        /// Start offset in the input.
        start: u32,
        /// End offset (exclusive).
        end: u32,
    },
    /// Contains entity references (validated at parse time); decoded into
    /// slot `slot` on first access.
    Lazy {
        /// Start offset in the input.
        start: u32,
        /// End offset (exclusive).
        end: u32,
        /// Index into the document's decode-slot table.
        slot: u32,
    },
}

/// Node payload (the lazy mirror of [`crate::dom::NodeKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LazyKind {
    /// An element with an interned name.
    Element(LazyName),
    /// A text or CDATA node.
    Text(ValRef),
    /// A comment (content dropped).
    Comment,
    /// A processing instruction (target kept, data dropped).
    Pi(ValRef),
}

/// One node in the lazy arena.
#[derive(Debug, Clone)]
pub struct LazyNode {
    /// Payload.
    pub kind: LazyKind,
    /// Parent node, if any.
    pub parent: Option<LazyId>,
    /// First child, if any.
    pub first_child: Option<LazyId>,
    /// Last child, if any (O(1) append).
    pub last_child: Option<LazyId>,
    /// Next sibling, if any.
    pub next_sibling: Option<LazyId>,
    /// Attribute records `attrs[attr_start..attr_end]` (elements only).
    pub attr_start: u32,
    /// End of this element's attribute range.
    pub attr_end: u32,
}

/// One attribute (undecoded value).
#[derive(Debug, Clone, Copy)]
pub struct LazyAttr {
    /// Interned attribute name.
    pub name: LazyName,
    /// Undecoded value.
    pub value: ValRef,
}

/// A lazily-parsed XML document borrowing the input buffer.
#[derive(Debug)]
pub struct LazyDoc<'a> {
    input: &'a [u8],
    nodes: Vec<LazyNode>,
    attrs: Vec<LazyAttr>,
    names: Vec<&'a [u8]>,
    name_lookup: HashMap<&'a [u8], LazyName, FnvBuild>,
    // Single-threaded decode memo (the serving path builds one LazyDoc per
    // request on one worker); `OnceCell` keeps `value()` a `&self` borrow.
    decoded: Vec<OnceCell<Vec<u8>>>,
    root: Option<LazyId>,
}

impl<'a> LazyDoc<'a> {
    /// The input buffer this document borrows.
    pub fn input(&self) -> &'a [u8] {
        self.input
    }

    /// The root element. Errors if the document has none.
    pub fn root(&self) -> XmlResult<LazyId> {
        self.root.ok_or(XmlError::at(XmlErrorKind::NoRoot, 0))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of attributes across all elements.
    pub fn attr_count(&self) -> usize {
        self.attrs.len()
    }

    /// Borrow a node.
    pub fn node(&self, id: LazyId) -> &LazyNode {
        &self.nodes[id.0 as usize]
    }

    /// Node payload.
    pub fn kind(&self, id: LazyId) -> LazyKind {
        self.nodes[id.0 as usize].kind
    }

    /// First child, if any.
    pub fn first_child(&self, id: LazyId) -> Option<LazyId> {
        self.nodes[id.0 as usize].first_child
    }

    /// Next sibling, if any.
    pub fn next_sibling(&self, id: LazyId) -> Option<LazyId> {
        self.nodes[id.0 as usize].next_sibling
    }

    /// Parent, if any.
    pub fn parent(&self, id: LazyId) -> Option<LazyId> {
        self.nodes[id.0 as usize].parent
    }

    /// The bytes of an interned name.
    pub fn name_bytes(&self, id: LazyName) -> &'a [u8] {
        self.names[id.0 as usize]
    }

    /// Look up a name id without interning (`None` if the name never
    /// appears in the document — a cheap "cannot match" signal).
    pub fn find_name(&self, name: &[u8]) -> Option<LazyName> {
        self.name_lookup.get(name).copied()
    }

    /// The attribute records of an element.
    pub fn attrs(&self, id: LazyId) -> &[LazyAttr] {
        let n = &self.nodes[id.0 as usize];
        &self.attrs[n.attr_start as usize..n.attr_end as usize]
    }

    /// Materialize a value: raw spans borrow the input; entity-bearing
    /// spans decode into the slot table on first access and borrow it
    /// afterwards.
    pub fn value(&self, v: ValRef) -> &[u8] {
        match v {
            ValRef::Raw { start, end } => &self.input[start as usize..end as usize],
            ValRef::Lazy { start, end, slot } => self.decoded[slot as usize].get_or_init(|| {
                let mut out = Vec::new();
                let span = Span { start: start as usize, end: end as usize };
                // Entities were validated at parse time; re-decoding them
                // cannot fail.
                let ok = decode_text_fast(self.input, span, &mut out);
                debug_assert!(ok.is_ok());
                out
            }),
        }
    }

    /// The first attribute with the given name, materialized.
    pub fn attr_value(&self, id: LazyId, name: &[u8]) -> Option<&[u8]> {
        let want = self.find_name(name)?;
        self.attrs(id).iter().find(|a| a.name == want).map(|a| self.value(a.value))
    }

    /// Concatenated text of all direct text children (the lazy mirror of
    /// [`crate::dom::Document::text_of_t`]).
    pub fn text_of(&self, id: LazyId) -> Vec<u8> {
        let mut out = Vec::new();
        let mut cur = self.first_child(id);
        while let Some(c) = cur {
            if let LazyKind::Text(v) = self.kind(c) {
                out.extend_from_slice(self.value(v));
            }
            cur = self.next_sibling(c);
        }
        out
    }

    /// Does the concatenated direct text of `id` equal `expect`? Compares
    /// incrementally — no concatenation buffer on the hot path.
    pub fn text_eq(&self, id: LazyId, expect: &[u8]) -> bool {
        let mut rest = expect;
        let mut cur = self.first_child(id);
        while let Some(c) = cur {
            if let LazyKind::Text(v) = self.kind(c) {
                let piece = self.value(v);
                if piece.len() > rest.len() || &rest[..piece.len()] != piece {
                    return false;
                }
                rest = &rest[piece.len()..];
            }
            cur = self.next_sibling(c);
        }
        rest.is_empty()
    }

    /// Depth-first pre-order iterator over all node ids.
    pub fn descendants(&self, from: LazyId) -> LazyDescendants<'_, 'a> {
        LazyDescendants { doc: self, stack: vec![from] }
    }

    fn push_node(&mut self, kind: LazyKind) -> LazyId {
        let id = LazyId(self.nodes.len() as u32);
        self.nodes.push(LazyNode {
            kind,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            attr_start: 0,
            attr_end: 0,
        });
        id
    }

    fn append_child(&mut self, parent: LazyId, child: LazyId) {
        match self.nodes[parent.0 as usize].last_child {
            Some(prev) => self.nodes[prev.0 as usize].next_sibling = Some(child),
            None => self.nodes[parent.0 as usize].first_child = Some(child),
        }
        self.nodes[parent.0 as usize].last_child = Some(child);
        self.nodes[child.0 as usize].parent = Some(parent);
    }

    fn intern_name(&mut self, bytes: &'a [u8]) -> LazyName {
        if let Some(&id) = self.name_lookup.get(bytes) {
            return id;
        }
        let id = LazyName(self.names.len() as u32);
        self.names.push(bytes);
        self.name_lookup.insert(bytes, id);
        id
    }

    /// Turn a lexer span into a value reference, validating (but not
    /// decoding) entity references so parse-time errors mirror the eager
    /// parser's.
    fn val_ref(&mut self, span: Span, has_entities: bool) -> XmlResult<ValRef> {
        if !has_entities {
            return Ok(ValRef::Raw { start: span.start as u32, end: span.end as u32 });
        }
        validate_entities_fast(self.input, span)?;
        let slot = self.decoded.len() as u32;
        self.decoded.push(OnceCell::new());
        Ok(ValRef::Lazy { start: span.start as u32, end: span.end as u32, slot })
    }
}

/// Iterator for [`LazyDoc::descendants`].
pub struct LazyDescendants<'d, 'a> {
    doc: &'d LazyDoc<'a>,
    stack: Vec<LazyId>,
}

impl Iterator for LazyDescendants<'_, '_> {
    type Item = LazyId;

    fn next(&mut self) -> Option<LazyId> {
        let id = self.stack.pop()?;
        // Push children in reverse so iteration is document order.
        let len = self.stack.len();
        let mut c = self.doc.node(id).first_child;
        while let Some(cid) = c {
            self.stack.push(cid);
            c = self.doc.node(cid).next_sibling;
        }
        self.stack[len..].reverse();
        Some(id)
    }
}

/// Parse a complete document lazily with default options.
pub fn parse_document_lazy(input: &[u8]) -> XmlResult<LazyDoc<'_>> {
    parse_lazy_with_options(input, ParseOptions::default())
}

/// Parse a complete document lazily.
///
/// Structural checks, skipping rules, and every error (kind and offset)
/// match [`crate::parser::parse_with_options`] over the same bytes; the
/// differential suite in `tests/` pins this.
pub fn parse_lazy_with_options(input: &[u8], opts: ParseOptions) -> XmlResult<LazyDoc<'_>> {
    let mut doc = LazyDoc {
        input,
        nodes: Vec::new(),
        attrs: Vec::new(),
        names: Vec::new(),
        name_lookup: HashMap::default(),
        decoded: Vec::new(),
        root: None,
    };
    let mut lexer = Lexer::new(crate::input::TBuf::msg(input));
    let mut stack: Vec<(LazyId, Span)> = Vec::new();
    let mut saw_root = false;

    loop {
        let tok = lexer.next_token_fast()?;
        match tok {
            Token::Eof => {
                if let Some(&(_, open)) = stack.last() {
                    return Err(XmlError::at(XmlErrorKind::UnexpectedEof, open.start));
                }
                if !saw_root {
                    return Err(XmlError::at(XmlErrorKind::NoRoot, lexer.pos()));
                }
                return Ok(doc);
            }
            Token::XmlDecl | Token::Doctype => {}
            Token::Comment => {
                if opts.keep_comments && !stack.is_empty() {
                    let id = doc.push_node(LazyKind::Comment);
                    if let Some(&(parent, _)) = stack.last() {
                        doc.append_child(parent, id);
                    }
                }
            }
            Token::Pi { target } => {
                if let Some(&(parent, _)) = stack.last() {
                    let v = ValRef::Raw { start: target.start as u32, end: target.end as u32 };
                    let id = doc.push_node(LazyKind::Pi(v));
                    doc.append_child(parent, id);
                }
            }
            Token::StartTag { name, attrs, self_closing } => {
                if stack.is_empty() && saw_root {
                    return Err(XmlError::at(XmlErrorKind::ExtraContent, name.start));
                }
                if stack.len() >= opts.max_depth {
                    return Err(XmlError::at(XmlErrorKind::TooDeep, name.start));
                }
                let name_id = doc.intern_name(&input[name.start..name.end]);
                let id = doc.push_node(LazyKind::Element(name_id));

                let attr_start = doc.attrs.len() as u32;
                for a in &attrs {
                    let aname = doc.intern_name(&input[a.name.start..a.name.end]);
                    let value = doc.val_ref(a.value, a.has_entities)?;
                    doc.attrs.push(LazyAttr { name: aname, value });
                }
                doc.nodes[id.0 as usize].attr_start = attr_start;
                doc.nodes[id.0 as usize].attr_end = doc.attrs.len() as u32;

                match stack.last() {
                    Some(&(parent, _)) => doc.append_child(parent, id),
                    None => {
                        doc.root = Some(id);
                        saw_root = true;
                    }
                }
                if !self_closing {
                    stack.push((id, name));
                }
            }
            Token::EndTag { name } => {
                let Some((_, open)) = stack.pop() else {
                    return Err(XmlError::at(XmlErrorKind::MismatchedTag, name.start));
                };
                if input[open.start..open.end] != input[name.start..name.end] {
                    return Err(XmlError::at(XmlErrorKind::MismatchedTag, name.start));
                }
            }
            Token::Text { span, has_entities } => {
                if stack.is_empty() {
                    let raw = &input[span.start..span.end];
                    if raw.iter().any(|b| !b.is_ascii_whitespace()) {
                        return Err(XmlError::at(XmlErrorKind::ExtraContent, span.start));
                    }
                    continue;
                }
                let raw = &input[span.start..span.end];
                let ws_only = raw.iter().all(|b| b.is_ascii_whitespace());
                if ws_only && !opts.keep_whitespace_text {
                    continue;
                }
                let v = doc.val_ref(span, has_entities)?;
                let id = doc.push_node(LazyKind::Text(v));
                let parent = stack.last().map(|&(n, _)| n).expect("checked non-empty");
                doc.append_child(parent, id);
            }
            Token::Cdata { span } => {
                if stack.is_empty() {
                    return Err(XmlError::at(XmlErrorKind::ExtraContent, span.start));
                }
                let v = ValRef::Raw { start: span.start as u32, end: span.end as u32 };
                let id = doc.push_node(LazyKind::Text(v));
                let parent = stack.last().map(|&(n, _)| n).expect("checked non-empty");
                doc.append_child(parent, id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let doc = parse_document_lazy(b"<a><b><c/></b><d>txt</d></a>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(
            doc.name_bytes(match doc.kind(root) {
                LazyKind::Element(n) => n,
                other => panic!("unexpected {other:?}"),
            }),
            b"a"
        );
        let b = doc.first_child(root).unwrap();
        let d = doc.next_sibling(b).unwrap();
        assert_eq!(doc.text_of(d), b"txt");
        assert!(doc.text_eq(d, b"txt"));
        assert!(!doc.text_eq(d, b"tx"));
        assert!(!doc.text_eq(d, b"txty"));
    }

    #[test]
    fn values_stay_raw_until_accessed() {
        let doc = parse_document_lazy(br#"<a x="1 &amp; 2" y="plain">t &lt; u</a>"#).unwrap();
        let root = doc.root().unwrap();
        // Entity-bearing attr: decoded lazily.
        assert_eq!(doc.attr_value(root, b"x").unwrap(), b"1 & 2");
        // Raw attr: borrows the input.
        let y = doc.attr_value(root, b"y").unwrap();
        assert_eq!(y, b"plain");
        let input_range = doc.input().as_ptr_range();
        assert!(input_range.contains(&y.as_ptr()), "raw value must borrow the input");
        assert_eq!(doc.text_of(root), b"t < u");
    }

    #[test]
    fn bad_entities_fail_at_parse_time() {
        let err = parse_document_lazy(b"<a>x &nope; y</a>").unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::BadEntity);
        let err = parse_document_lazy(br#"<a v="&nope;"/>"#).unwrap_err();
        assert_eq!(err.kind, XmlErrorKind::BadEntity);
    }

    #[test]
    fn structural_errors_match_eager_kinds() {
        for (input, kind) in [
            (&b"<a><b></a></b>"[..], XmlErrorKind::MismatchedTag),
            (b"<a><b></b>", XmlErrorKind::UnexpectedEof),
            (b"<a/><b/>", XmlErrorKind::ExtraContent),
            (b"", XmlErrorKind::NoRoot),
            (b"<a/>junk", XmlErrorKind::ExtraContent),
        ] {
            assert_eq!(parse_document_lazy(input).unwrap_err().kind, kind, "{input:?}");
        }
    }

    #[test]
    fn cdata_and_pi_nodes_mirror_eager_shape() {
        let doc = parse_document_lazy(b"<r><?go now?><![CDATA[<x>&amp;]]></r>").unwrap();
        let root = doc.root().unwrap();
        let pi = doc.first_child(root).unwrap();
        assert!(matches!(doc.kind(pi), LazyKind::Pi(_)));
        let cd = doc.next_sibling(pi).unwrap();
        match doc.kind(cd) {
            LazyKind::Text(v) => assert_eq!(doc.value(v), b"<x>&amp;"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn descendants_pre_order() {
        let doc = parse_document_lazy(b"<r><a><b/></a><c/></r>").unwrap();
        let root = doc.root().unwrap();
        let names: Vec<&[u8]> = doc
            .descendants(root)
            .filter_map(|id| match doc.kind(id) {
                LazyKind::Element(n) => Some(doc.name_bytes(n)),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec![&b"r"[..], b"a", b"b", b"c"]);
    }
}
