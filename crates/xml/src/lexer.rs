//! XML tokenizer.
//!
//! A byte-at-a-time scanner in the style of expat/libxml2's low-level
//! tokenizers: every byte examined is one traced load, one or two ALU ops
//! and a conditional branch, which is precisely the workload character the
//! paper attributes to XML content processing (§3.2 — "copying,
//! concatenation, parsing, tokenization, and matching").
//!
//! [`Lexer::next_token`] yields one [`Token`] per markup construct or text
//! run. Entity decoding is left to [`decode_text`], which the parser calls
//! when materializing text/attribute values.
//!
//! [`Lexer::next_token_fast`] is the untraced twin for the live serving
//! path: identical tokens, spans, and errors (kind *and* offset), but
//! delimiter hunting runs eight bytes per iteration via [`crate::scan`]
//! and no probe operations are emitted. The traced byte-at-a-time path
//! above stays the simulator's counter reference; the differential suite
//! in `tests/` pins the two together.

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::input::TBuf;
use crate::scan;
use aon_trace::{br, site, Probe};

/// A half-open byte range in the input buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Start offset (inclusive).
    pub start: usize,
    /// End offset (exclusive).
    pub end: usize,
}

impl Span {
    /// Length of the span.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the span is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// One attribute inside a start tag (raw, not yet entity-decoded).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawAttr {
    /// Attribute name.
    pub name: Span,
    /// Attribute value (inside the quotes, undecoded).
    pub value: Span,
    /// Whether the value contains `&` and needs entity decoding.
    pub has_entities: bool,
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<?xml ...?>` declaration (content ignored).
    XmlDecl,
    /// `<?target data?>` processing instruction.
    Pi {
        /// PI target name.
        target: Span,
    },
    /// `<!-- ... -->` (content ignored).
    Comment,
    /// `<!DOCTYPE ...>` (content ignored; internal subsets unsupported).
    Doctype,
    /// `<name attr="v" ...>` or `<name ... />`.
    StartTag {
        /// Element name.
        name: Span,
        /// Attributes in document order.
        attrs: Vec<RawAttr>,
        /// True for `<name/>`.
        self_closing: bool,
    },
    /// `</name>`.
    EndTag {
        /// Element name.
        name: Span,
    },
    /// Character data between markup (undecoded).
    Text {
        /// The raw span.
        span: Span,
        /// Whether the run contains `&` references.
        has_entities: bool,
    },
    /// `<![CDATA[ ... ]]>` content.
    Cdata {
        /// The literal content span.
        span: Span,
    },
    /// End of input.
    Eof,
}

/// Is `b` an XML whitespace byte?
#[inline]
fn is_ws(b: u8) -> bool {
    matches!(b, b' ' | b'\t' | b'\r' | b'\n')
}

/// May `b` start a name? (ASCII subset + raw UTF-8 continuation bytes; full
/// Unicode name classes are out of scope and unnecessary for AON traffic.)
#[inline]
fn is_name_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b == b':' || b >= 0x80
}

/// May `b` continue a name?
#[inline]
fn is_name_byte(b: u8) -> bool {
    is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
}

/// [`is_name_byte`] as a 256-entry table, so the fast path classifies a
/// name byte with one indexed load instead of a comparison chain.
const NAME_BYTE: [bool; 256] = {
    let mut t = [false; 256];
    let mut i = 0usize;
    while i < 256 {
        let b = i as u8;
        t[i] = b.is_ascii_alphanumeric() || b >= 0x80 || matches!(b, b'_' | b':' | b'-' | b'.');
        i += 1;
    }
    t
};

/// The tokenizer.
pub struct Lexer<'a> {
    buf: TBuf<'a>,
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Tokenize `buf` from the beginning.
    pub fn new(buf: TBuf<'a>) -> Self {
        Lexer { buf, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// The underlying buffer.
    pub fn buf(&self) -> TBuf<'a> {
        self.buf
    }

    fn err(&self, kind: XmlErrorKind) -> XmlError {
        XmlError::at(kind, self.pos)
    }

    #[inline]
    fn at_end<P: Probe>(&self, p: &mut P) -> bool {
        let end = self.pos >= self.buf.len();
        p.alu(1);
        p.branch(site!(), end);
        end
    }

    #[inline]
    fn peek<P: Probe>(&self, p: &mut P) -> XmlResult<u8> {
        self.buf.try_get(self.pos, p).ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))
    }

    #[inline]
    fn bump<P: Probe>(&mut self, p: &mut P) -> XmlResult<u8> {
        let b = self.peek(p)?;
        self.pos += 1;
        p.alu(1);
        Ok(b)
    }

    fn expect<P: Probe>(&mut self, want: u8, p: &mut P) -> XmlResult<()> {
        let b = self.peek(p)?;
        if br!(p, b == want) {
            self.pos += 1;
            p.alu(1);
            Ok(())
        } else {
            Err(self.err(XmlErrorKind::MalformedTag))
        }
    }

    /// Skip whitespace; returns how many bytes were skipped.
    fn skip_ws<P: Probe>(&mut self, p: &mut P) -> usize {
        let start = self.pos;
        while let Some(b) = self.buf.try_get(self.pos, p) {
            p.alu(1);
            if !br!(p, is_ws(b)) {
                break;
            }
            self.pos += 1;
        }
        self.pos - start
    }

    /// Scan an XML name starting at the current position.
    fn scan_name<P: Probe>(&mut self, p: &mut P) -> XmlResult<Span> {
        let start = self.pos;
        let first = self.peek(p)?;
        p.alu(2);
        if !br!(p, is_name_start(first)) {
            return Err(self.err(XmlErrorKind::MalformedTag));
        }
        self.pos += 1;
        while let Some(b) = self.buf.try_get(self.pos, p) {
            p.alu(2);
            if !br!(p, is_name_byte(b)) {
                break;
            }
            self.pos += 1;
        }
        let span = Span { start, end: self.pos };
        self.check_name_utf8(span)?;
        Ok(span)
    }

    /// Reject name spans that are not well-formed UTF-8.
    ///
    /// [`is_name_start`] admits raw `>= 0x80` bytes, so without this check a
    /// truncated multi-byte sequence inside a name tokenizes successfully
    /// and is only caught (or not) by a later whole-message
    /// [`crate::utf8::validate_utf8`] pass. The check is deliberately
    /// *untraced* — plain slice reads, no probe ops — so the traced path's
    /// counters are byte-identical for ASCII names (all AON traffic); only
    /// names containing high bytes pay the decode. Both lexer paths share
    /// it, keeping their error behaviour aligned.
    fn check_name_utf8(&self, span: Span) -> XmlResult<()> {
        let bytes = &self.buf.raw()[span.start..span.end];
        if bytes.is_ascii() {
            return Ok(());
        }
        match std::str::from_utf8(bytes) {
            Ok(_) => Ok(()),
            Err(e) => Err(XmlError::at(XmlErrorKind::MalformedTag, span.start + e.valid_up_to())),
        }
    }

    /// Scan until the two-byte terminator `t0 t1` (e.g. `?>`); returns the
    /// content span (exclusive of the terminator).
    fn scan_until2<P: Probe>(
        &mut self,
        t0: u8,
        t1: u8,
        kind: XmlErrorKind,
        p: &mut P,
    ) -> XmlResult<Span> {
        let start = self.pos;
        loop {
            if self.at_end(p) {
                return Err(XmlError::at(kind, self.pos));
            }
            let b = self.bump(p)?;
            p.alu(1);
            if br!(p, b == t0) {
                let n = self.peek(p)?;
                if br!(p, n == t1) {
                    self.pos += 1;
                    return Ok(Span { start, end: self.pos - 2 });
                }
            }
        }
    }

    /// Scan one attribute (`name = "value"`); current position must be at
    /// the name start.
    fn scan_attr<P: Probe>(&mut self, p: &mut P) -> XmlResult<RawAttr> {
        let name = self.scan_name(p)?;
        self.skip_ws(p);
        self.expect(b'=', p).map_err(|e| XmlError::at(XmlErrorKind::BadAttribute, e.offset))?;
        self.skip_ws(p);
        let quote = self.bump(p)?;
        p.alu(1);
        if !br!(p, quote == b'"' || quote == b'\'') {
            return Err(self.err(XmlErrorKind::BadAttribute));
        }
        let vstart = self.pos;
        let mut has_entities = false;
        loop {
            let b = self
                .buf
                .try_get(self.pos, p)
                .ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
            p.alu(1);
            if br!(p, b == quote) {
                break;
            }
            if br!(p, b == b'<') {
                return Err(self.err(XmlErrorKind::BadAttribute));
            }
            if br!(p, b == b'&') {
                has_entities = true;
            }
            self.pos += 1;
        }
        let value = Span { start: vstart, end: self.pos };
        self.pos += 1; // closing quote
        p.alu(1);
        Ok(RawAttr { name, value, has_entities })
    }

    /// Scan the body of a start tag after `<name`, collecting attributes.
    fn scan_start_tag<P: Probe>(&mut self, name: Span, p: &mut P) -> XmlResult<Token> {
        let mut attrs = Vec::new();
        loop {
            let skipped = self.skip_ws(p);
            let b = self.peek(p)?;
            p.alu(1);
            if br!(p, b == b'>') {
                self.pos += 1;
                return Ok(Token::StartTag { name, attrs, self_closing: false });
            }
            if br!(p, b == b'/') {
                self.pos += 1;
                self.expect(b'>', p)?;
                return Ok(Token::StartTag { name, attrs, self_closing: true });
            }
            // An attribute must be whitespace-separated from what precedes.
            if br!(p, skipped == 0) {
                return Err(self.err(XmlErrorKind::MalformedTag));
            }
            attrs.push(self.scan_attr(p)?);
        }
    }

    /// Scan markup starting at `<` (already consumed position is *at* `<`).
    fn scan_markup<P: Probe>(&mut self, p: &mut P) -> XmlResult<Token> {
        self.pos += 1; // consume '<'
        p.alu(1);
        let b = self.peek(p)?;
        if br!(p, b == b'/') {
            self.pos += 1;
            let name = self.scan_name(p)?;
            self.skip_ws(p);
            self.expect(b'>', p).map_err(|e| XmlError::at(XmlErrorKind::MalformedTag, e.offset))?;
            return Ok(Token::EndTag { name });
        }
        if br!(p, b == b'?') {
            self.pos += 1;
            let target =
                self.scan_name(p).map_err(|e| XmlError::at(XmlErrorKind::BadPi, e.offset))?;
            let target_bytes = self.buf.span(target.start, target.end);
            self.scan_until2(b'?', b'>', XmlErrorKind::BadPi, p)?;
            p.alu(2);
            if br!(p, target_bytes == b"xml") {
                return Ok(Token::XmlDecl);
            }
            return Ok(Token::Pi { target });
        }
        if br!(p, b == b'!') {
            self.pos += 1;
            let b2 = self.peek(p)?;
            if br!(p, b2 == b'-') {
                // Comment: <!-- ... -->
                self.pos += 1;
                self.expect(b'-', p)
                    .map_err(|e| XmlError::at(XmlErrorKind::BadComment, e.offset))?;
                self.scan_comment(p)?;
                return Ok(Token::Comment);
            }
            if br!(p, b2 == b'[') {
                // CDATA: <![CDATA[ ... ]]>
                return self.scan_cdata(p);
            }
            if br!(p, b2 == b'D') {
                // DOCTYPE (no internal subset support).
                let mut depth = 0usize;
                loop {
                    let c = self.bump(p)?;
                    p.alu(1);
                    if br!(p, c == b'<') {
                        depth += 1;
                    } else if br!(p, c == b'>') {
                        if br!(p, depth == 0) {
                            return Ok(Token::Doctype);
                        }
                        depth -= 1;
                    }
                }
            }
            return Err(self.err(XmlErrorKind::UnexpectedByte));
        }
        let name = self.scan_name(p)?;
        self.scan_start_tag(name, p)
    }

    fn scan_comment<P: Probe>(&mut self, p: &mut P) -> XmlResult<()> {
        // Content up to `-->`; `--` not followed by `>` is an error per spec.
        loop {
            let b = self.bump(p).map_err(|_| self.err(XmlErrorKind::BadComment))?;
            p.alu(1);
            if br!(p, b == b'-') {
                let b2 = self.peek(p).map_err(|_| self.err(XmlErrorKind::BadComment))?;
                if br!(p, b2 == b'-') {
                    self.pos += 1;
                    let b3 = self.peek(p).map_err(|_| self.err(XmlErrorKind::BadComment))?;
                    if br!(p, b3 == b'>') {
                        self.pos += 1;
                        return Ok(());
                    }
                    return Err(self.err(XmlErrorKind::BadComment));
                }
            }
        }
    }

    fn scan_cdata<P: Probe>(&mut self, p: &mut P) -> XmlResult<Token> {
        // Current position is at '[' of "<![CDATA[".
        const OPEN: &[u8] = b"[CDATA[";
        for (i, &want) in OPEN.iter().enumerate() {
            let b = self
                .buf
                .try_get(self.pos + i, p)
                .ok_or_else(|| self.err(XmlErrorKind::BadCdata))?;
            p.alu(1);
            if !br!(p, b == want) {
                return Err(self.err(XmlErrorKind::BadCdata));
            }
        }
        self.pos += OPEN.len();
        let start = self.pos;
        loop {
            if self.at_end(p) {
                return Err(self.err(XmlErrorKind::BadCdata));
            }
            let b = self.bump(p)?;
            p.alu(1);
            if br!(p, b == b']') {
                let b2 = self.buf.try_get(self.pos, p);
                let b3 = self.buf.try_get(self.pos + 1, p);
                if br!(p, b2 == Some(b']') && b3 == Some(b'>')) {
                    let span = Span { start, end: self.pos - 1 };
                    self.pos += 2;
                    return Ok(Token::Cdata { span });
                }
            }
        }
    }

    /// Produce the next token.
    pub fn next_token<P: Probe>(&mut self, p: &mut P) -> XmlResult<Token> {
        if self.at_end(p) {
            return Ok(Token::Eof);
        }
        let b = self.peek(p)?;
        p.alu(1);
        if br!(p, b == b'<') {
            return self.scan_markup(p);
        }
        // Text run until '<' or EOF.
        let start = self.pos;
        let mut has_entities = false;
        while let Some(c) = self.buf.try_get(self.pos, p) {
            p.alu(1);
            if br!(p, c == b'<') {
                break;
            }
            if br!(p, c == b'&') {
                has_entities = true;
            }
            self.pos += 1;
        }
        Ok(Token::Text { span: Span { start, end: self.pos }, has_entities })
    }

    /// Produce the next token on the fast (untraced) path.
    ///
    /// The twin of [`Lexer::next_token`]: same tokens, same spans, same
    /// errors (kind and offset) on every input — the differential suite in
    /// `tests/` asserts this over arbitrary bytes. The difference is purely
    /// mechanical: no probe operations, direct slice indexing instead of
    /// [`TBuf`] accessors, and SWAR delimiter scanning ([`crate::scan`])
    /// for text runs, attribute values, and skip-to-terminator hunts.
    pub fn next_token_fast(&mut self) -> XmlResult<Token> {
        let hay = self.buf.raw();
        if self.pos >= hay.len() {
            return Ok(Token::Eof);
        }
        if hay[self.pos] == b'<' {
            return self.fast_markup(hay);
        }
        // Text run until '<' or EOF; one SWAR pass also finds the '&'s.
        let start = self.pos;
        let (stop, has_entities) = scan::scan_until_amp(b'<', &hay[start..]);
        self.pos = match stop {
            Some(i) => start + i,
            None => hay.len(),
        };
        Ok(Token::Text { span: Span { start, end: self.pos }, has_entities })
    }

    /// Fast twin of [`Lexer::scan_markup`]; current position is at `<`.
    fn fast_markup(&mut self, hay: &[u8]) -> XmlResult<Token> {
        self.pos += 1; // consume '<'
        let b = *hay.get(self.pos).ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        if b == b'/' {
            self.pos += 1;
            let name = self.fast_name(hay)?;
            self.fast_skip_ws(hay);
            // Traced path maps the expect('>') failure — including EOF — to
            // MalformedTag at the current position.
            if hay.get(self.pos) != Some(&b'>') {
                return Err(self.err(XmlErrorKind::MalformedTag));
            }
            self.pos += 1;
            return Ok(Token::EndTag { name });
        }
        if b == b'?' {
            self.pos += 1;
            let target =
                self.fast_name(hay).map_err(|e| XmlError::at(XmlErrorKind::BadPi, e.offset))?;
            self.fast_until2(hay, b'?', b'>', XmlErrorKind::BadPi)?;
            if &hay[target.start..target.end] == b"xml" {
                return Ok(Token::XmlDecl);
            }
            return Ok(Token::Pi { target });
        }
        if b == b'!' {
            self.pos += 1;
            let b2 = *hay.get(self.pos).ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
            if b2 == b'-' {
                self.pos += 1;
                // expect('-') failure maps to BadComment at the current pos.
                if hay.get(self.pos) != Some(&b'-') {
                    return Err(self.err(XmlErrorKind::BadComment));
                }
                self.pos += 1;
                self.fast_comment(hay)?;
                return Ok(Token::Comment);
            }
            if b2 == b'[' {
                return self.fast_cdata(hay);
            }
            if b2 == b'D' {
                // DOCTYPE: skip to the matching '>', counting '<' depth.
                let mut depth = 0usize;
                let mut from = self.pos;
                loop {
                    let Some(i) = scan::find_byte2(b'<', b'>', &hay[from..]) else {
                        self.pos = hay.len();
                        return Err(self.err(XmlErrorKind::UnexpectedEof));
                    };
                    let at = from + i;
                    if hay[at] == b'<' {
                        depth += 1;
                    } else if depth == 0 {
                        self.pos = at + 1;
                        return Ok(Token::Doctype);
                    } else {
                        depth -= 1;
                    }
                    from = at + 1;
                }
            }
            return Err(self.err(XmlErrorKind::UnexpectedByte));
        }
        let name = self.fast_name(hay)?;
        self.fast_start_tag(hay, name)
    }

    /// Fast twin of [`Lexer::scan_name`].
    fn fast_name(&mut self, hay: &[u8]) -> XmlResult<Span> {
        let start = self.pos;
        let first = *hay.get(start).ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        if !is_name_start(first) {
            return Err(self.err(XmlErrorKind::MalformedTag));
        }
        let mut i = start + 1;
        while i < hay.len() && NAME_BYTE[usize::from(hay[i])] {
            i += 1;
        }
        self.pos = i;
        let span = Span { start, end: i };
        self.check_name_utf8(span)?;
        Ok(span)
    }

    /// Fast twin of [`Lexer::skip_ws`].
    fn fast_skip_ws(&mut self, hay: &[u8]) -> usize {
        let start = self.pos;
        while self.pos < hay.len() && is_ws(hay[self.pos]) {
            self.pos += 1;
        }
        self.pos - start
    }

    /// Fast twin of [`Lexer::scan_until2`].
    fn fast_until2(&mut self, hay: &[u8], t0: u8, t1: u8, kind: XmlErrorKind) -> XmlResult<Span> {
        let start = self.pos;
        let mut from = self.pos;
        loop {
            let Some(i) = scan::find_byte(t0, &hay[from..]) else {
                self.pos = hay.len();
                return Err(XmlError::at(kind, self.pos));
            };
            let at = from + i;
            match hay.get(at + 1) {
                // Traced path bumps t0 then fails the peek: UnexpectedEof,
                // not `kind`.
                None => {
                    self.pos = at + 1;
                    return Err(self.err(XmlErrorKind::UnexpectedEof));
                }
                Some(&n) if n == t1 => {
                    self.pos = at + 2;
                    return Ok(Span { start, end: at });
                }
                Some(_) => from = at + 1,
            }
        }
    }

    /// Fast twin of [`Lexer::scan_start_tag`].
    fn fast_start_tag(&mut self, hay: &[u8], name: Span) -> XmlResult<Token> {
        let mut attrs = Vec::new();
        loop {
            let skipped = self.fast_skip_ws(hay);
            let b = *hay.get(self.pos).ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
            if b == b'>' {
                self.pos += 1;
                return Ok(Token::StartTag { name, attrs, self_closing: false });
            }
            if b == b'/' {
                self.pos += 1;
                return match hay.get(self.pos) {
                    None => Err(self.err(XmlErrorKind::UnexpectedEof)),
                    Some(&b'>') => {
                        self.pos += 1;
                        Ok(Token::StartTag { name, attrs, self_closing: true })
                    }
                    Some(_) => Err(self.err(XmlErrorKind::MalformedTag)),
                };
            }
            if skipped == 0 {
                return Err(self.err(XmlErrorKind::MalformedTag));
            }
            attrs.push(self.fast_attr(hay)?);
        }
    }

    /// Fast twin of [`Lexer::scan_attr`].
    fn fast_attr(&mut self, hay: &[u8]) -> XmlResult<RawAttr> {
        let name = self.fast_name(hay)?;
        self.fast_skip_ws(hay);
        // expect('=') failure — including EOF — maps to BadAttribute here.
        if hay.get(self.pos) != Some(&b'=') {
            return Err(self.err(XmlErrorKind::BadAttribute));
        }
        self.pos += 1;
        self.fast_skip_ws(hay);
        let quote = *hay.get(self.pos).ok_or_else(|| self.err(XmlErrorKind::UnexpectedEof))?;
        self.pos += 1;
        if quote != b'"' && quote != b'\'' {
            return Err(self.err(XmlErrorKind::BadAttribute));
        }
        let vstart = self.pos;
        let (stop, has_entities) = scan::scan2_until_amp(quote, b'<', &hay[vstart..]);
        let Some(i) = stop else {
            self.pos = hay.len();
            return Err(self.err(XmlErrorKind::UnexpectedEof));
        };
        let at = vstart + i;
        self.pos = at;
        if hay[at] == b'<' {
            return Err(self.err(XmlErrorKind::BadAttribute));
        }
        let value = Span { start: vstart, end: at };
        self.pos = at + 1; // closing quote
        Ok(RawAttr { name, value, has_entities })
    }

    /// Fast twin of [`Lexer::scan_comment`]; position is after `<!--`.
    fn fast_comment(&mut self, hay: &[u8]) -> XmlResult<()> {
        // The first "--" decides: followed by '>' it closes the comment,
        // otherwise the comment is malformed per spec — no need to keep
        // searching past it.
        let Some(i) = scan::find_seq2(b'-', b'-', &hay[self.pos..]) else {
            self.pos = hay.len();
            return Err(self.err(XmlErrorKind::BadComment));
        };
        let at = self.pos + i; // first '-' of "--"
        self.pos = at + 2;
        match hay.get(at + 2) {
            Some(&b'>') => {
                self.pos = at + 3;
                Ok(())
            }
            // "--" not followed by '>' (or by anything) errors at the same
            // offset as the traced path's failed peek.
            _ => Err(self.err(XmlErrorKind::BadComment)),
        }
    }

    /// Fast twin of [`Lexer::scan_cdata`]; position is at `[` of `<![CDATA[`.
    fn fast_cdata(&mut self, hay: &[u8]) -> XmlResult<Token> {
        const OPEN: &[u8] = b"[CDATA[";
        if hay.len() < self.pos + OPEN.len() || &hay[self.pos..self.pos + OPEN.len()] != OPEN {
            return Err(self.err(XmlErrorKind::BadCdata));
        }
        self.pos += OPEN.len();
        let start = self.pos;
        let mut from = self.pos;
        loop {
            let Some(i) = scan::find_byte(b']', &hay[from..]) else {
                self.pos = hay.len();
                return Err(self.err(XmlErrorKind::BadCdata));
            };
            let at = from + i;
            if hay.get(at + 1) == Some(&b']') && hay.get(at + 2) == Some(&b'>') {
                self.pos = at + 3;
                return Ok(Token::Cdata { span: Span { start, end: at } });
            }
            from = at + 1;
        }
    }
}

/// Decode entity references in `span` of `buf`, appending the decoded bytes
/// to `out`. Supports the five predefined entities and decimal/hex character
/// references (ASCII and general UTF-8 code points).
///
/// Tracing: one load per byte re-read plus per-byte ALU; the caller accounts
/// for the stores when materializing `out` into an arena.
pub fn decode_text<P: Probe>(
    buf: TBuf<'_>,
    span: Span,
    out: &mut Vec<u8>,
    p: &mut P,
) -> XmlResult<()> {
    let mut i = span.start;
    while i < span.end {
        let b = buf.get(i, p);
        p.alu(1);
        if !br!(p, b == b'&') {
            out.push(b);
            i += 1;
            continue;
        }
        // Find the terminating ';' (entities are short; cap the scan).
        let mut j = i + 1;
        let limit = (i + 12).min(span.end);
        let mut end = None;
        while j < limit {
            let c = buf.get(j, p);
            p.alu(1);
            if br!(p, c == b';') {
                end = Some(j);
                break;
            }
            j += 1;
        }
        let Some(end) = end else {
            return Err(XmlError::at(XmlErrorKind::BadEntity, i));
        };
        let name = buf.span(i + 1, end);
        p.alu(name.len() as u32);
        match name {
            b"lt" => out.push(b'<'),
            b"gt" => out.push(b'>'),
            b"amp" => out.push(b'&'),
            b"apos" => out.push(b'\''),
            b"quot" => out.push(b'"'),
            _ if name.first() == Some(&b'#') => {
                let bad = || XmlError::at(XmlErrorKind::BadEntity, i);
                let digits = std::str::from_utf8(&name[1..]).map_err(|_| bad())?;
                let cp = if let Some(hex) = digits.strip_prefix(['x', 'X']) {
                    u32::from_str_radix(hex, 16)
                } else {
                    digits.parse::<u32>()
                }
                .map_err(|_| bad())?;
                let ch = char::from_u32(cp).ok_or_else(bad)?;
                let mut utf8 = [0u8; 4];
                out.extend_from_slice(ch.encode_utf8(&mut utf8).as_bytes());
            }
            _ => return Err(XmlError::at(XmlErrorKind::BadEntity, i)),
        }
        i = end + 1;
    }
    Ok(())
}

/// One decoded entity reference: the replacement value and the position
/// just past the terminating `;`.
enum EntityVal {
    /// A predefined entity (single byte).
    Byte(u8),
    /// A character reference.
    Ch(char),
}

/// Parse the entity reference starting at `i` (the `&`), bounded by `end`.
/// The decode logic and error offsets are those of [`decode_text`].
fn parse_entity(input: &[u8], i: usize, end: usize) -> XmlResult<(EntityVal, usize)> {
    let bad = || XmlError::at(XmlErrorKind::BadEntity, i);
    // Entities are short; cap the ';' scan exactly as the traced decoder.
    let limit = (i + 12).min(end);
    let mut j = i + 1;
    let mut term = None;
    while j < limit {
        if input[j] == b';' {
            term = Some(j);
            break;
        }
        j += 1;
    }
    let Some(t) = term else {
        return Err(bad());
    };
    let name = &input[i + 1..t];
    let v = match name {
        b"lt" => EntityVal::Byte(b'<'),
        b"gt" => EntityVal::Byte(b'>'),
        b"amp" => EntityVal::Byte(b'&'),
        b"apos" => EntityVal::Byte(b'\''),
        b"quot" => EntityVal::Byte(b'"'),
        _ if name.first() == Some(&b'#') => {
            let digits = std::str::from_utf8(&name[1..]).map_err(|_| bad())?;
            let cp = if let Some(hex) = digits.strip_prefix(['x', 'X']) {
                u32::from_str_radix(hex, 16)
            } else {
                digits.parse::<u32>()
            }
            .map_err(|_| bad())?;
            EntityVal::Ch(char::from_u32(cp).ok_or_else(bad)?)
        }
        _ => return Err(bad()),
    };
    Ok((v, t + 1))
}

/// Untraced twin of [`decode_text`]: identical output bytes and identical
/// errors (kind and offset), but literal stretches between entities are
/// copied slice-at-a-time instead of byte-at-a-time.
pub fn decode_text_fast(input: &[u8], span: Span, out: &mut Vec<u8>) -> XmlResult<()> {
    let mut i = span.start;
    while let Some(r) = scan::find_byte(b'&', &input[i..span.end]) {
        let amp = i + r;
        out.extend_from_slice(&input[i..amp]);
        let (v, next) = parse_entity(input, amp, span.end)?;
        match v {
            EntityVal::Byte(b) => out.push(b),
            EntityVal::Ch(c) => {
                let mut utf8 = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut utf8).as_bytes());
            }
        }
        i = next;
    }
    out.extend_from_slice(&input[i..span.end]);
    Ok(())
}

/// Check the entity references in `span` without materializing the decoded
/// bytes — the validation half of [`decode_text_fast`], used by the lazy
/// parser so parse-time errors match the eager parser while the decode
/// itself is deferred to first access.
pub fn validate_entities_fast(input: &[u8], span: Span) -> XmlResult<()> {
    let mut i = span.start;
    while let Some(r) = scan::find_byte(b'&', &input[i..span.end]) {
        let (_, next) = parse_entity(input, i + r, span.end)?;
        i = next;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::{NullProbe, Tracer};

    fn lex_all(input: &[u8]) -> XmlResult<Vec<Token>> {
        let mut p = NullProbe;
        let mut lx = Lexer::new(TBuf::msg(input));
        let mut out = Vec::new();
        loop {
            let t = lx.next_token(&mut p)?;
            let done = t == Token::Eof;
            out.push(t);
            if done {
                return Ok(out);
            }
        }
    }

    fn span_text(input: &[u8], s: Span) -> &[u8] {
        &input[s.start..s.end]
    }

    #[test]
    fn simple_element() {
        let input = b"<a>hi</a>";
        let toks = lex_all(input).unwrap();
        assert_eq!(toks.len(), 4); // start, text, end, eof
        match &toks[0] {
            Token::StartTag { name, attrs, self_closing } => {
                assert_eq!(span_text(input, *name), b"a");
                assert!(attrs.is_empty());
                assert!(!self_closing);
            }
            other => panic!("unexpected {other:?}"),
        }
        match &toks[1] {
            Token::Text { span, has_entities } => {
                assert_eq!(span_text(input, *span), b"hi");
                assert!(!has_entities);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn attributes_and_self_closing() {
        let input = br#"<po id="42" note='a&amp;b'/>"#;
        let toks = lex_all(input).unwrap();
        match &toks[0] {
            Token::StartTag { attrs, self_closing, .. } => {
                assert!(self_closing);
                assert_eq!(attrs.len(), 2);
                assert_eq!(span_text(input, attrs[0].name), b"id");
                assert_eq!(span_text(input, attrs[0].value), b"42");
                assert!(!attrs[0].has_entities);
                assert!(attrs[1].has_entities);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn xml_decl_and_pi_and_comment() {
        let input = b"<?xml version=\"1.0\"?><?proc data?><!-- c --><r/>";
        let toks = lex_all(input).unwrap();
        assert_eq!(toks[0], Token::XmlDecl);
        assert!(matches!(toks[1], Token::Pi { .. }));
        assert_eq!(toks[2], Token::Comment);
        assert!(matches!(toks[3], Token::StartTag { .. }));
    }

    #[test]
    fn cdata() {
        let input = b"<r><![CDATA[<not&markup>]]></r>";
        let toks = lex_all(input).unwrap();
        match &toks[1] {
            Token::Cdata { span } => assert_eq!(span_text(input, *span), b"<not&markup>"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn doctype_skipped() {
        let input = b"<!DOCTYPE note SYSTEM \"note.dtd\"><n/>";
        let toks = lex_all(input).unwrap();
        assert_eq!(toks[0], Token::Doctype);
    }

    #[test]
    fn errors_unterminated_tag() {
        assert!(lex_all(b"<a").is_err());
        assert!(lex_all(b"<a foo=>").is_err());
        assert!(lex_all(b"<a foo=\"x>").is_err());
        assert!(lex_all(b"<!-- never closed").is_err());
        assert!(lex_all(b"<![CDATA[oops").is_err());
    }

    #[test]
    fn attr_requires_separating_ws() {
        assert!(lex_all(b"<a x=\"1\"y=\"2\"/>").is_err());
    }

    #[test]
    fn decode_predefined_entities() {
        let input = b"a&lt;b&gt;c&amp;d&apos;e&quot;f";
        let mut out = Vec::new();
        decode_text(
            TBuf::msg(input),
            Span { start: 0, end: input.len() },
            &mut out,
            &mut NullProbe,
        )
        .unwrap();
        assert_eq!(out, b"a<b>c&d'e\"f");
    }

    #[test]
    fn decode_char_refs() {
        let input = "x&#65;&#x42;&#x2603;".as_bytes();
        let mut out = Vec::new();
        decode_text(
            TBuf::msg(input),
            Span { start: 0, end: input.len() },
            &mut out,
            &mut NullProbe,
        )
        .unwrap();
        assert_eq!(out, "xAB\u{2603}".as_bytes());
    }

    #[test]
    fn decode_bad_entity_is_error() {
        for bad in [&b"&unknown;"[..], b"&lt", b"&#xZZ;", b"&#1114112;"] {
            let mut out = Vec::new();
            assert!(
                decode_text(
                    TBuf::msg(bad),
                    Span { start: 0, end: bad.len() },
                    &mut out,
                    &mut NullProbe
                )
                .is_err(),
                "expected error for {:?}",
                String::from_utf8_lossy(bad)
            );
        }
    }

    #[test]
    fn lexing_emits_per_byte_work() {
        let input = b"<abc def=\"ghi\">text</abc>";
        let mut t = Tracer::new();
        let mut lx = Lexer::new(TBuf::msg(input));
        loop {
            if lx.next_token(&mut t).unwrap() == Token::Eof {
                break;
            }
        }
        let s = t.finish().stats();
        // Every input byte is examined at least once.
        assert!(s.loads >= input.len() as u64);
        // Scanning is branch-heavy: at least one branch per two bytes.
        assert!(s.branches as usize >= input.len() / 2);
    }
}
