//! # aon-xml — instrumented XML substrate
//!
//! A real, self-contained XML processing stack — tokenizer, pull parser,
//! arena DOM, XPath 1.0 subset, and XSD schema-validation subset — built for
//! the AON reproduction. It serves double duty:
//!
//! 1. **As an ordinary library.** All entry points are generic over
//!    `P: Probe` ([`aon_trace::Probe`]); pass [`aon_trace::NullProbe`] and
//!    the instrumentation compiles away, leaving a usable (if deliberately
//!    2006-era-styled) XML engine. The Criterion benches measure it this
//!    way.
//! 2. **As a workload generator.** Pass an [`aon_trace::Tracer`] and every
//!    byte examined, DOM node built, schema rule checked and branch decided
//!    is recorded as an abstract-op trace with realistic addresses — the
//!    instruction stream the `aon-sim` processor models execute.
//!
//! The three paper use cases map onto this crate as:
//!
//! * **FR** — no XML work (HTTP proxying only; see `aon-server`).
//! * **CBR** — [`parser`] + [`dom`] + [`xpath`] evaluation of
//!   `//quantity/text()` (paper §3.2.1).
//! * **SV** — [`parser`] + [`dom`] + [`schema`] validation against a
//!   pre-stored XSD.
//!
//! Design constraints carried over from the paper's workload description
//! (§3.2): computation is character/string manipulation — copying,
//! concatenation, parsing, tokenization, matching — with no floating point;
//! it exercises logical ops, caches, and branch prediction.

// The DOM is a u32-indexed arena (half the footprint of usize ids on the
// modelled 64-bit hosts), so offsets, node ids and spans narrow from
// `usize` throughout this crate. Inputs are network messages a few KiB
// long — nowhere near 2^32 — and the arena itself fails allocation before
// any id could wrap, so these narrowing casts are structural, not bugs.
#![allow(clippy::cast_possible_truncation)]

pub mod arena;
pub mod dom;
pub mod error;
pub mod input;
pub mod lazy;
pub mod lexer;
pub mod parser;
pub mod samples;
pub mod scan;
pub mod schema;
pub mod serialize;
pub mod soap;
pub mod utf8;
pub mod xpath;

pub use arena::Arena;
pub use dom::{Document, NodeId, NodeKind};
pub use error::{XmlError, XmlErrorKind, XmlResult};
pub use input::TBuf;
pub use parser::parse_document;
pub use schema::{Schema, Validity};
pub use xpath::{XPath, XPathValue};
