//! Pull parser: token stream → arena [`Document`].
//!
//! The parser maintains an explicit element stack (no recursion, bounded by
//! [`ParseOptions::max_depth`]), interns element/attribute names into the
//! document, entity-decodes attribute values and text runs, and links nodes
//! as they complete — all with traced arena stores, so building the DOM is
//! a store-heavy phase just as it is in a real engine.

use crate::dom::{AttrRec, Document, Node, NodeId, NodeKind, StrRef};
use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::input::TBuf;
use crate::lexer::{decode_text, Lexer, Span, Token};
use aon_trace::{br, site, Probe, ProbeExt};

/// Parser knobs.
#[derive(Debug, Clone, Copy)]
pub struct ParseOptions {
    /// Maximum element nesting depth.
    pub max_depth: usize,
    /// Whether to keep comments as DOM nodes (`false`: dropped, like most
    /// server-side engines configure it).
    pub keep_comments: bool,
    /// Whether to keep whitespace-only text nodes between elements.
    pub keep_whitespace_text: bool,
}

impl Default for ParseOptions {
    fn default() -> Self {
        ParseOptions { max_depth: 256, keep_comments: false, keep_whitespace_text: false }
    }
}

/// Parse a complete document with default options.
pub fn parse_document<P: Probe>(buf: TBuf<'_>, p: &mut P) -> XmlResult<Document> {
    parse_with_options(buf, ParseOptions::default(), p)
}

/// Parse a complete document.
pub fn parse_with_options<P: Probe>(
    buf: TBuf<'_>,
    opts: ParseOptions,
    p: &mut P,
) -> XmlResult<Document> {
    let mut doc = Document::new();
    let mut lexer = Lexer::new(buf);
    let mut stack: Vec<(NodeId, Span)> = Vec::new();
    let mut saw_root = false;
    let mut scratch: Vec<u8> = Vec::new();

    loop {
        let tok = lexer.next_token(p)?;
        match tok {
            Token::Eof => {
                p.branch(site!(), stack.is_empty());
                if let Some(&(_, open)) = stack.last() {
                    return Err(XmlError::at(XmlErrorKind::UnexpectedEof, open.start));
                }
                if !saw_root {
                    return Err(XmlError::at(XmlErrorKind::NoRoot, lexer.pos()));
                }
                return Ok(doc);
            }
            Token::XmlDecl | Token::Doctype => {
                // Prolog only; ignore. (Strictly these are only legal before
                // the root, which we don't police — AON traffic never has
                // them elsewhere.)
            }
            Token::Comment => {
                if br!(p, opts.keep_comments && !stack.is_empty()) {
                    let id = new_node(&mut doc, NodeKind::Comment, p);
                    let parent = stack.last().map(|&(n, _)| n);
                    if let Some(parent) = parent {
                        doc.append_child(parent, id, p);
                    }
                }
            }
            Token::Pi { target } => {
                if br!(p, !stack.is_empty()) {
                    let tname = intern_span(&mut doc, buf, target, p);
                    let id = new_node(&mut doc, NodeKind::Pi(tname), p);
                    let parent = stack.last().map(|&(n, _)| n).expect("checked non-empty");
                    doc.append_child(parent, id, p);
                }
            }
            Token::StartTag { name, attrs, self_closing } => {
                if br!(p, stack.is_empty() && saw_root) {
                    return Err(XmlError::at(XmlErrorKind::ExtraContent, name.start));
                }
                if br!(p, stack.len() >= opts.max_depth) {
                    return Err(XmlError::at(XmlErrorKind::TooDeep, name.start));
                }
                let name_bytes = buf.span(name.start, name.end);
                let name_id = doc.intern_name(name_bytes, p);
                let id = new_node(&mut doc, NodeKind::Element(name_id), p);

                // Attributes.
                let attr_start = doc.attr_count() as u32;
                for a in &attrs {
                    let aname = doc.intern_name(buf.span(a.name.start, a.name.end), p);
                    let value = if br!(p, a.has_entities) {
                        scratch.clear();
                        decode_text(buf, a.value, &mut scratch, p)?;
                        doc.intern_bytes(&scratch, p)
                    } else {
                        // Raw span copied into the string arena. The source
                        // bytes were scanned a moment ago (loads already in
                        // the trace and the lines are cache-hot); the copy's
                        // cost is its stores, which intern_bytes emits.
                        doc.intern_bytes(buf.span(a.value.start, a.value.end), p)
                    };
                    doc.push_attr(AttrRec { name: aname, value }, p);
                }
                doc.set_attr_range(id, attr_start, doc.attr_count() as u32);

                match stack.last() {
                    Some(&(parent, _)) => doc.append_child(parent, id, p),
                    None => {
                        doc.set_root(id);
                        saw_root = true;
                    }
                }
                if !br!(p, self_closing) {
                    stack.push((id, name));
                }
            }
            Token::EndTag { name } => {
                let Some((id, open)) = stack.pop() else {
                    return Err(XmlError::at(XmlErrorKind::MismatchedTag, name.start));
                };
                let open_bytes = buf.span(open.start, open.end);
                let close_bytes = buf.span(name.start, name.end);
                // Tag-match compare: the close tag's bytes were just scanned;
                // re-reading the open tag name comes from the interned copy.
                p.compare(
                    doc.str_addr(0),
                    buf.addr(name.start),
                    name.len() as u32,
                    open_bytes == close_bytes,
                );
                if br!(p, open_bytes != close_bytes) {
                    return Err(XmlError::at(XmlErrorKind::MismatchedTag, name.start));
                }
                let _ = id;
            }
            Token::Text { span, has_entities } => {
                if stack.is_empty() {
                    // Whitespace between prolog/epilog constructs is fine;
                    // anything else is content outside the root.
                    let raw = buf.span(span.start, span.end);
                    p.alu(span.len() as u32);
                    if br!(p, raw.iter().any(|b| !b.is_ascii_whitespace())) {
                        return Err(XmlError::at(XmlErrorKind::ExtraContent, span.start));
                    }
                    continue;
                }
                let raw = buf.span(span.start, span.end);
                let ws_only = raw.iter().all(|b| b.is_ascii_whitespace());
                p.alu(span.len() as u32 / 4); // SIMD-ish whitespace check
                if br!(p, ws_only && !opts.keep_whitespace_text) {
                    continue;
                }
                let sref = if br!(p, has_entities) {
                    scratch.clear();
                    decode_text(buf, span, &mut scratch, p)?;
                    doc.intern_bytes(&scratch, p)
                } else {
                    doc.intern_bytes(raw, p)
                };
                let id = new_node(&mut doc, NodeKind::Text(sref), p);
                let parent = stack.last().map(|&(n, _)| n).expect("checked non-empty");
                doc.append_child(parent, id, p);
            }
            Token::Cdata { span } => {
                if stack.is_empty() {
                    return Err(XmlError::at(XmlErrorKind::ExtraContent, span.start));
                }
                let raw = buf.span(span.start, span.end);
                let sref = doc.intern_bytes(raw, p);
                let id = new_node(&mut doc, NodeKind::Text(sref), p);
                let parent = stack.last().map(|&(n, _)| n).expect("checked non-empty");
                doc.append_child(parent, id, p);
            }
        }
    }
}

fn new_node<P: Probe>(doc: &mut Document, kind: NodeKind, p: &mut P) -> NodeId {
    doc.push_node(
        Node {
            kind,
            parent: None,
            first_child: None,
            last_child: None,
            next_sibling: None,
            attr_start: 0,
            attr_end: 0,
        },
        p,
    )
}

fn intern_span<P: Probe>(doc: &mut Document, buf: TBuf<'_>, span: Span, p: &mut P) -> StrRef {
    doc.intern_bytes(buf.span(span.start, span.end), p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::NodeKind;
    use aon_trace::{NullProbe, Tracer};

    fn parse(input: &[u8]) -> XmlResult<Document> {
        parse_document(TBuf::msg(input), &mut NullProbe)
    }

    #[test]
    fn parses_nested_structure() {
        let doc = parse(b"<a><b><c/></b><d>txt</d></a>").unwrap();
        let root = doc.root().unwrap();
        assert!(doc.name_is_t(root, b"a", &mut NullProbe));
        let b = doc.first_child_t(root, &mut NullProbe).unwrap();
        assert!(doc.name_is_t(b, b"b", &mut NullProbe));
        let d = doc.next_sibling_t(b, &mut NullProbe).unwrap();
        assert_eq!(doc.text_of_t(d, &mut NullProbe), b"txt");
    }

    #[test]
    fn attributes_decoded() {
        let doc = parse(br#"<a x="1 &amp; 2" y='z'/>"#).unwrap();
        let root = doc.root().unwrap();
        let x = doc.attr_value_t(root, b"x", &mut NullProbe).unwrap();
        assert_eq!(doc.str_bytes(x), b"1 & 2");
        let y = doc.attr_value_t(root, b"y", &mut NullProbe).unwrap();
        assert_eq!(doc.str_bytes(y), b"z");
        assert_eq!(doc.attr_value_t(root, b"missing", &mut NullProbe), None);
    }

    #[test]
    fn text_entities_decoded() {
        let doc = parse(b"<a>1 &lt; 2 &#38; 3</a>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.text_of_t(root, &mut NullProbe), b"1 < 2 & 3");
    }

    #[test]
    fn cdata_preserved_verbatim() {
        let doc = parse(b"<a><![CDATA[<b>&amp;</b>]]></a>").unwrap();
        let root = doc.root().unwrap();
        assert_eq!(doc.text_of_t(root, &mut NullProbe), b"<b>&amp;</b>");
    }

    #[test]
    fn whitespace_text_dropped_by_default() {
        let doc = parse(b"<a>\n  <b/>\n</a>").unwrap();
        let root = doc.root().unwrap();
        let child = doc.first_child_t(root, &mut NullProbe).unwrap();
        assert!(matches!(doc.kind_t(child, &mut NullProbe), NodeKind::Element(_)));
        assert_eq!(doc.next_sibling_t(child, &mut NullProbe), None);
    }

    #[test]
    fn whitespace_kept_when_asked() {
        let doc = parse_with_options(
            TBuf::msg(b"<a> <b/></a>"),
            ParseOptions { keep_whitespace_text: true, ..Default::default() },
            &mut NullProbe,
        )
        .unwrap();
        let root = doc.root().unwrap();
        let first = doc.first_child_t(root, &mut NullProbe).unwrap();
        assert!(matches!(doc.kind_t(first, &mut NullProbe), NodeKind::Text(_)));
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(matches!(parse(b"<a><b></a></b>").unwrap_err().kind, XmlErrorKind::MismatchedTag));
    }

    #[test]
    fn unclosed_root_errors() {
        assert!(matches!(parse(b"<a><b></b>").unwrap_err().kind, XmlErrorKind::UnexpectedEof));
    }

    #[test]
    fn two_roots_error() {
        assert!(matches!(parse(b"<a/><b/>").unwrap_err().kind, XmlErrorKind::ExtraContent));
    }

    #[test]
    fn empty_input_errors() {
        assert!(matches!(parse(b"").unwrap_err().kind, XmlErrorKind::NoRoot));
        assert!(matches!(parse(b"   ").unwrap_err().kind, XmlErrorKind::NoRoot));
    }

    #[test]
    fn text_outside_root_errors() {
        assert!(matches!(parse(b"<a/>junk").unwrap_err().kind, XmlErrorKind::ExtraContent));
        // Trailing whitespace is legal.
        assert!(parse(b"<a/>\n ").is_ok());
    }

    #[test]
    fn depth_limit_enforced() {
        let mut s = Vec::new();
        for _ in 0..300 {
            s.extend_from_slice(b"<d>");
        }
        for _ in 0..300 {
            s.extend_from_slice(b"</d>");
        }
        assert!(matches!(parse(&s).unwrap_err().kind, XmlErrorKind::TooDeep));
    }

    #[test]
    fn prolog_handled() {
        let doc = parse(b"<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!-- hdr -->\n<a/>").unwrap();
        assert!(doc.root().is_ok());
    }

    #[test]
    fn parse_is_store_heavy_in_trace() {
        let mut t = Tracer::new();
        parse_document(TBuf::msg(b"<order><item qty=\"3\">widget</item></order>"), &mut t).unwrap();
        let s = t.finish().stats();
        assert!(s.stores > 10, "DOM building must emit stores, got {}", s.stores);
        assert!(s.loads > 40, "scanning must emit loads, got {}", s.loads);
        assert!(s.branches > 30);
    }

    #[test]
    fn traced_and_untraced_parses_agree() {
        let input = br#"<r a="1"><x>t1</x><y b="2 &gt; 1">t2</y></r>"#;
        let d1 = parse_document(TBuf::msg(input), &mut NullProbe).unwrap();
        let mut t = Tracer::new();
        let d2 = parse_document(TBuf::msg(input), &mut t).unwrap();
        assert_eq!(d1.node_count(), d2.node_count());
        assert_eq!(d1.attr_count(), d2.attr_count());
    }
}
