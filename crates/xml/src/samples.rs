//! Shared sample documents for tests and examples.
//!
//! The CBR/SV message follows the paper's description (§3.2.1): a SOAP
//! envelope carrying a purchase-order body with a `<quantity>` element,
//! padded with filler text elements toward the AONBench-specified 5 KB
//! message size. The runtime corpus generator lives in
//! `aon-server::corpus`; these fixtures are small hand-written instances.

/// A purchase-order XSD exercising sequences, occurs bounds, attributes,
/// simple-type facets and patterns.
pub const PURCHASE_ORDER_XSD: &[u8] = br#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:simpleType name="skuType">
    <xs:restriction base="xs:string">
      <xs:pattern value="[A-Z]{2}[0-9]{3,6}"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:simpleType name="qtyType">
    <xs:restriction base="xs:positiveInteger">
      <xs:maxInclusive value="1000"/>
    </xs:restriction>
  </xs:simpleType>
  <xs:complexType name="itemType">
    <xs:sequence>
      <xs:element name="sku" type="skuType"/>
      <xs:element name="name" type="xs:string"/>
      <xs:element name="quantity" type="qtyType"/>
      <xs:element name="price" type="xs:decimal"/>
      <xs:element name="note" type="xs:string" minOccurs="0"/>
    </xs:sequence>
    <xs:attribute name="line" type="xs:positiveInteger" use="required"/>
  </xs:complexType>
  <xs:element name="order">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="customer" type="xs:string"/>
        <xs:element name="date" type="xs:date"/>
        <xs:element name="item" type="itemType" minOccurs="1" maxOccurs="unbounded"/>
        <xs:element name="filler" type="xs:string" minOccurs="0" maxOccurs="unbounded"/>
      </xs:sequence>
      <xs:attribute name="id" type="xs:positiveInteger" use="required"/>
      <xs:attribute name="currency">
        <xs:simpleType>
          <xs:restriction base="xs:string">
            <xs:enumeration value="USD"/>
            <xs:enumeration value="EUR"/>
            <xs:enumeration value="JPY"/>
          </xs:restriction>
        </xs:simpleType>
      </xs:attribute>
    </xs:complexType>
  </xs:element>
</xs:schema>
"#;

/// A message that conforms to [`PURCHASE_ORDER_XSD`].
pub const PURCHASE_ORDER_OK: &[u8] = br#"<?xml version="1.0"?>
<order id="7" currency="USD">
  <customer>Acme Networks</customer>
  <date>2007-03-14</date>
  <item line="1">
    <sku>AB1234</sku>
    <name>gigabit line card</name>
    <quantity>1</quantity>
    <price>4999.00</price>
  </item>
  <item line="2">
    <sku>CD567</sku>
    <name>rack bolt</name>
    <quantity>25</quantity>
    <price>0.35</price>
    <note>stainless</note>
  </item>
  <filler>xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx</filler>
</order>
"#;

/// A message that violates [`PURCHASE_ORDER_XSD`] (bad sku pattern, zero
/// quantity, missing required attribute).
pub const PURCHASE_ORDER_BAD: &[u8] = br#"<?xml version="1.0"?>
<order currency="USD">
  <customer>Acme Networks</customer>
  <date>2007-03-14</date>
  <item line="1">
    <sku>lowercase99</sku>
    <name>gigabit line card</name>
    <quantity>0</quantity>
    <price>4999.00</price>
  </item>
</order>
"#;

/// The SOAP-wrapped CBR message of the paper: `//quantity/text()` is
/// evaluated and compared against `"1"`.
pub const SOAP_CBR_MATCH: &[u8] = br#"<?xml version="1.0"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
  <soap:Header><route>default</route></soap:Header>
  <soap:Body>
    <purchaseOrder>
      <item><name>line card</name><quantity>1</quantity></item>
      <fill>abcdefghijklmnopqrstuvwxyz0123456789</fill>
    </purchaseOrder>
  </soap:Body>
</soap:Envelope>
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::TBuf;
    use crate::parser::parse_document;
    use aon_trace::NullProbe;

    #[test]
    fn fixtures_parse() {
        for doc in [PURCHASE_ORDER_XSD, PURCHASE_ORDER_OK, PURCHASE_ORDER_BAD, SOAP_CBR_MATCH] {
            parse_document(TBuf::msg(doc), &mut NullProbe).expect("fixture parses");
        }
    }

    #[test]
    fn soap_message_matches_paper_xpath() {
        let doc = parse_document(TBuf::msg(SOAP_CBR_MATCH), &mut NullProbe).unwrap();
        let xp = crate::xpath::XPath::compile("//quantity/text()").unwrap();
        assert!(xp.string_equals(&doc, b"1", &mut NullProbe).unwrap());
    }
}
