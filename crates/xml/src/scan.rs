//! SWAR delimiter scanning for the fast (untraced) parse path.
//!
//! Dependency-free `memchr`-style finders that examine input eight bytes
//! per iteration using the classic SWAR zero-byte trick: a byte of
//! interest is XOR-folded to zero, and `haszero(v) =
//! (v - 0x01…01) & !v & 0x80…80` lights the high bit of every zero byte.
//! `u64::from_le_bytes` fixes byte order, so `trailing_zeros / 8` is the
//! index of the *first* match on every platform.
//!
//! These back [`crate::lexer::Lexer::next_token_fast`], the untraced twin
//! of the byte-at-a-time tokenizer. The traced path never calls into this
//! module, so simulator counter tables are unaffected by construction.
//!
//! Everything here is safe code (`unsafe_code = "forbid"` is a workspace
//! lint): chunking comes from `chunks_exact(8)` and word loads from an
//! explicit 8-byte array, which the compiler folds to a single load.

/// Low bits of every byte lane.
const LO: u64 = 0x0101_0101_0101_0101;
/// High bits of every byte lane.
const HI: u64 = 0x8080_8080_8080_8080;

/// Broadcast `b` into all eight lanes.
#[inline]
fn splat(b: u8) -> u64 {
    LO * u64::from(b)
}

/// High bit set in every lane whose byte is zero.
#[inline]
const fn has_zero(v: u64) -> u64 {
    v.wrapping_sub(LO) & !v & HI
}

/// Load eight bytes as a little-endian word. `chunk` must be exactly eight
/// bytes (as produced by `chunks_exact(8)`).
#[inline]
fn word(chunk: &[u8]) -> u64 {
    u64::from_le_bytes([
        chunk[0], chunk[1], chunk[2], chunk[3], chunk[4], chunk[5], chunk[6], chunk[7],
    ])
}

/// Index of the first match from a non-zero lane mask.
#[inline]
fn first(mask: u64) -> usize {
    // trailing_zeros / 8 selects a lane, so the result is at most 7.
    usize::try_from(mask.trailing_zeros() >> 3).expect("lane index fits usize")
}

/// Position of the first `needle` in `hay`, eight bytes per iteration.
#[inline]
pub fn find_byte(needle: u8, hay: &[u8]) -> Option<usize> {
    let pat = splat(needle);
    let mut chunks = hay.chunks_exact(8);
    let mut off = 0usize;
    for c in chunks.by_ref() {
        let m = has_zero(word(c) ^ pat);
        if m != 0 {
            return Some(off + first(m));
        }
        off += 8;
    }
    chunks.remainder().iter().position(|&b| b == needle).map(|i| off + i)
}

/// Position of the first byte equal to `n1` or `n2`.
#[inline]
pub fn find_byte2(n1: u8, n2: u8, hay: &[u8]) -> Option<usize> {
    let p1 = splat(n1);
    let p2 = splat(n2);
    let mut chunks = hay.chunks_exact(8);
    let mut off = 0usize;
    for c in chunks.by_ref() {
        let w = word(c);
        let m = has_zero(w ^ p1) | has_zero(w ^ p2);
        if m != 0 {
            return Some(off + first(m));
        }
        off += 8;
    }
    chunks.remainder().iter().position(|&b| b == n1 || b == n2).map(|i| off + i)
}

/// Scan a character-data run: find the first `stop` byte while recording
/// whether any `&` occurs strictly before it.
///
/// Returns `(position of stop, saw_amp_before_stop)`; the position is
/// `None` when `stop` does not occur (the amp flag then covers all of
/// `hay`). This is the text-run and attribute-value workhorse: one pass,
/// no re-scan for the entity flag.
#[inline]
pub fn scan_until_amp(stop: u8, hay: &[u8]) -> (Option<usize>, bool) {
    scan2_until_amp(stop, stop, hay)
}

/// Like [`scan_until_amp`] but with two stop bytes (first of either wins).
/// Used for attribute values, which terminate at the quote and reject `<`.
#[inline]
pub fn scan2_until_amp(s1: u8, s2: u8, hay: &[u8]) -> (Option<usize>, bool) {
    let p1 = splat(s1);
    let p2 = splat(s2);
    let pa = splat(b'&');
    let mut amp = false;
    let mut chunks = hay.chunks_exact(8);
    let mut off = 0usize;
    for c in chunks.by_ref() {
        let w = word(c);
        let m_stop = has_zero(w ^ p1) | has_zero(w ^ p2);
        let m_amp = has_zero(w ^ pa);
        if m_stop != 0 {
            // Only `&` lanes strictly below the first stop lane count.
            let below = (m_stop & m_stop.wrapping_neg()).wrapping_sub(1);
            amp |= m_amp & below != 0;
            return (Some(off + first(m_stop)), amp);
        }
        amp |= m_amp != 0;
        off += 8;
    }
    for (i, &b) in chunks.remainder().iter().enumerate() {
        if b == s1 || b == s2 {
            return (Some(off + i), amp);
        }
        amp |= b == b'&';
    }
    (None, amp)
}

/// Position of the first two-byte sequence `t0 t1` in `hay` (e.g. `?>`).
/// Overlapping candidates are handled (`??>` matches at index 1).
#[inline]
pub fn find_seq2(t0: u8, t1: u8, hay: &[u8]) -> Option<usize> {
    let mut from = 0usize;
    while let Some(i) = find_byte(t0, &hay[from..]) {
        let at = from + i;
        match hay.get(at + 1) {
            Some(&b) if b == t1 => return Some(at),
            Some(_) => from = at + 1,
            None => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar reference for the differential checks below.
    fn ref_find2(n1: u8, n2: u8, hay: &[u8]) -> Option<usize> {
        hay.iter().position(|&b| b == n1 || b == n2)
    }

    #[test]
    fn finds_across_chunk_boundaries() {
        for len in 0..40usize {
            for at in 0..len {
                let mut v = vec![b'a'; len];
                v[at] = b'<';
                assert_eq!(find_byte(b'<', &v), Some(at), "len={len} at={at}");
            }
            let v = vec![b'a'; len];
            assert_eq!(find_byte(b'<', &v), None);
        }
    }

    #[test]
    fn first_match_wins_within_a_word() {
        let v = b"ab<d<f<h";
        assert_eq!(find_byte(b'<', v), Some(2));
        assert_eq!(find_byte2(b'<', b'f', v), Some(2));
        assert_eq!(find_byte2(b'f', b'<', v), Some(2));
    }

    #[test]
    fn find_byte2_matches_scalar_reference() {
        // Pseudo-random coverage of positions and byte values.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 31, 64] {
            for _ in 0..50 {
                let v: Vec<u8> = (0..len)
                    .map(|_| {
                        state = state
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        (state >> 33) as u8
                    })
                    .collect();
                assert_eq!(find_byte2(b'<', b'"', &v), ref_find2(b'<', b'"', &v), "{v:?}");
                assert_eq!(find_byte(b'&', &v), v.iter().position(|&b| b == b'&'), "{v:?}");
            }
        }
    }

    #[test]
    fn amp_flag_only_counts_before_stop() {
        // '&' after the stop byte must not set the flag.
        assert_eq!(scan_until_amp(b'<', b"abc<def&"), (Some(3), false));
        assert_eq!(scan_until_amp(b'<', b"a&c<def"), (Some(3), true));
        // Same word: '&' in lane 1, '<' in lane 2.
        assert_eq!(scan_until_amp(b'<', b"a&<xxxxx"), (Some(2), true));
        // Same word, reversed: '<' before '&'.
        assert_eq!(scan_until_amp(b'<', b"a<&xxxxx"), (Some(1), false));
        // No stop byte at all.
        assert_eq!(scan_until_amp(b'<', b"no amp here"), (None, false));
        assert_eq!(scan_until_amp(b'<', b"an &amp; here"), (None, true));
        // Remainder handling (len % 8 != 0).
        assert_eq!(scan_until_amp(b'<', b"aaaaaaaaa&b<c"), (Some(11), true));
        assert_eq!(scan_until_amp(b'<', b"aaaaaaaaa<b&c"), (Some(9), false));
    }

    #[test]
    fn two_stop_scan_reports_first_of_either() {
        assert_eq!(scan2_until_amp(b'"', b'<', b"val\"rest"), (Some(3), false));
        assert_eq!(scan2_until_amp(b'"', b'<', b"va<l\"rest"), (Some(2), false));
        assert_eq!(scan2_until_amp(b'"', b'<', b"a&b\"&"), (Some(3), true));
    }

    #[test]
    fn seq2_handles_overlap_and_tail() {
        assert_eq!(find_seq2(b'?', b'>', b"abc?>def"), Some(3));
        assert_eq!(find_seq2(b'?', b'>', b"ab??>def"), Some(3));
        assert_eq!(find_seq2(b'?', b'>', b"abc?d?"), None);
        assert_eq!(find_seq2(b'?', b'>', b"?>"), Some(0));
        assert_eq!(find_seq2(b'?', b'>', b"?"), None);
        assert_eq!(find_seq2(b'?', b'>', b""), None);
    }
}
