//! Compiled content-model automata for the fast (untraced) serving path.
//!
//! [`super::validate`] interprets the particle tree per message: every
//! child-list match re-walks `Sequence`/`Choice` nodes and compares element
//! names byte-by-byte. [`SchemaAutomaton`] compiles each `Children` content
//! model once — at rule-table construction — into a Glushkov position
//! automaton over an interned element-name alphabet, so the per-message
//! work is one table transition per child.
//!
//! Soundness over speed: the interpreted matcher is *greedy* (no
//! backtracking across repetition counts), which coincides with the
//! automaton's language exactly when the content model is deterministic —
//! XSD's Unique Particle Attribution rule, which real schemas satisfy. The
//! builder therefore checks determinism of the position automaton
//! (duplicate symbols in a first/follow set) and falls back to the *same
//! greedy interpreter* ([`validate::match_particle`] under `NullProbe`)
//! whenever the check fails, counts expand too far (`max − min > 8`), or
//! the model uses `xs:all`. Fallback changes cost, never verdicts; the
//! differential suite pins [`SchemaAutomaton::validate`] against
//! [`Schema::validate_node`] over the same bytes.
//!
//! Value and facet checks reuse [`super::value`] with `NullProbe` — the
//! exact lexical-space code the traced validator runs, minus the probes.

use super::types::{AttrDecl, ContentModel, Particle, SimpleType, TypeDef, TypeRef, MAX_UNBOUNDED};
use super::{validate, value, Schema};
use crate::lazy::{Fnv1a, LazyDoc, LazyId, LazyKind};
use aon_trace::NullProbe;
use std::borrow::Cow;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

type FnvBuild = BuildHasherDefault<Fnv1a>;

/// Missing transition.
const DEAD: u32 = u32::MAX;
/// Cap on expanded positions per content model (counts inflate the
/// position set; bigger models use the greedy interpreter).
const MAX_POSITIONS: usize = 64;
/// Cap on per-particle count expansion (`minOccurs`, `maxOccurs − minOccurs`).
const MAX_COUNT_EXPANSION: u32 = 8;

/// Lossless `u32` index → `usize` (this file is on the audit cast-enforced
/// list; every supported host has `usize` ≥ 32 bits).
fn ix(v: u32) -> usize {
    usize::try_from(v).expect("u32 index fits usize")
}

/// Bounded `usize` count → `u32` symbol/position id (counts here are capped
/// by [`MAX_POSITIONS`] / the count-expansion limits, far below `u32::MAX`).
fn small_u32(v: usize) -> u32 {
    u32::try_from(v).expect("bounded automaton count fits u32")
}

/// A schema compiled for verdict-only validation over [`LazyDoc`].
#[derive(Debug, Clone)]
pub struct SchemaAutomaton {
    schema: Schema,
    /// Content matcher per type definition (index-aligned with the
    /// schema's type table); `None` for simple/empty/text content.
    matchers: Vec<Option<ContentMatcher>>,
}

/// How one `Children` content model is matched.
#[derive(Debug, Clone)]
enum ContentMatcher {
    /// Deterministic position automaton: one transition per child.
    Dfa(Dfa),
    /// Greedy interpreter over the original particle (the traced
    /// validator's own algorithm, probe-free).
    Greedy,
}

impl SchemaAutomaton {
    /// Compile every content model of `schema`. Never fails: models the
    /// automaton construction cannot prove deterministic keep the greedy
    /// interpreter.
    pub fn compile(schema: &Schema) -> SchemaAutomaton {
        let matchers = schema
            .types
            .iter()
            .map(|t| match t {
                TypeDef::Complex(ct) => match &ct.content {
                    ContentModel::Children(p) => Some(match Dfa::try_build(p) {
                        Some(d) => ContentMatcher::Dfa(d),
                        None => ContentMatcher::Greedy,
                    }),
                    ContentModel::Empty | ContentModel::Text(_) => None,
                },
                TypeDef::Simple(_) => None,
            })
            .collect();
        SchemaAutomaton { schema: schema.clone(), matchers }
    }

    /// Number of content models compiled to DFAs (diagnostics/tests).
    pub fn dfa_count(&self) -> usize {
        self.matchers.iter().filter(|m| matches!(m, Some(ContentMatcher::Dfa(_)))).count()
    }

    /// Validate the whole document (root element against a global
    /// declaration). Verdict-equivalent to
    /// `Schema::validate(&eager_doc, p).is_valid()` on the same bytes.
    pub fn validate_document(&self, doc: &LazyDoc<'_>) -> bool {
        match doc.root() {
            Ok(root) => self.validate(doc, root),
            Err(_) => false,
        }
    }

    /// Validate the subtree rooted at `node`. Verdict-equivalent to
    /// `Schema::validate_node(&eager_doc, node, p).is_valid()`.
    pub fn validate(&self, doc: &LazyDoc<'_>, node: LazyId) -> bool {
        let LazyKind::Element(nm) = doc.kind(node) else {
            return false;
        };
        let name = doc.name_bytes(nm);
        let Some(decl) = self.schema.elements.iter().find(|d| d.name == name) else {
            return false;
        };
        self.validate_element(doc, node, decl.ty)
    }

    fn validate_element(&self, doc: &LazyDoc<'_>, node: LazyId, ty: TypeRef) -> bool {
        match ty {
            TypeRef::Builtin(bt) => {
                no_element_children(doc, node)
                    && value::check_builtin(bt, &direct_text(doc, node), &mut NullProbe)
                    && self.attrs_ok(doc, node, &[])
            }
            TypeRef::Def(id) => match &self.schema.types[ix(id.0)] {
                TypeDef::Simple(st) => {
                    no_element_children(doc, node)
                        && check_simple(st, &direct_text(doc, node))
                        && self.attrs_ok(doc, node, &[])
                }
                TypeDef::Complex(ct) => {
                    if !self.attrs_ok(doc, node, &ct.attrs) {
                        return false;
                    }
                    match &ct.content {
                        ContentModel::Empty => doc.first_child(node).is_none(),
                        ContentModel::Text(tr) => {
                            no_element_children(doc, node)
                                && match tr {
                                    TypeRef::Builtin(bt) => value::check_builtin(
                                        *bt,
                                        &direct_text(doc, node),
                                        &mut NullProbe,
                                    ),
                                    TypeRef::Def(tid) => {
                                        match &self.schema.types[ix(tid.0)] {
                                            TypeDef::Simple(st) => {
                                                check_simple(st, &direct_text(doc, node))
                                            }
                                            // The traced validator performs no
                                            // check here; mirror it.
                                            TypeDef::Complex(_) => true,
                                        }
                                    }
                                }
                        }
                        ContentModel::Children(particle) => {
                            self.check_children(doc, node, particle, ix(id.0))
                        }
                    }
                }
            },
        }
    }

    fn check_children(
        &self,
        doc: &LazyDoc<'_>,
        node: LazyId,
        particle: &Particle,
        type_idx: usize,
    ) -> bool {
        // Gather element children; non-whitespace text between them is a
        // violation (whitespace-only text was dropped at parse time).
        let mut children: Vec<(LazyId, &[u8])> = Vec::new();
        let mut cur = doc.first_child(node);
        while let Some(c) = cur {
            match doc.kind(c) {
                LazyKind::Element(nm) => children.push((c, doc.name_bytes(nm))),
                LazyKind::Text(v) => {
                    if !value::trim(doc.value(v)).is_empty() {
                        return false;
                    }
                }
                LazyKind::Comment | LazyKind::Pi(_) => {}
            }
            cur = doc.next_sibling(c);
        }
        let content_ok = match &self.matchers[type_idx] {
            Some(ContentMatcher::Dfa(dfa)) => dfa.accepts(children.iter().map(|&(_, n)| n)),
            _ => {
                let names: Vec<&[u8]> = children.iter().map(|&(_, n)| n).collect();
                let mut cursor = 0;
                validate::match_particle(particle, &names, 0, &mut NullProbe, &mut cursor)
                    == Some(names.len())
            }
        };
        if !content_ok {
            return false;
        }
        children.iter().all(|&(child, child_name)| {
            match validate::find_child_decl(particle, child_name) {
                Some(ty) => self.validate_element(doc, child, ty),
                None => false,
            }
        })
    }

    fn attrs_ok(&self, doc: &LazyDoc<'_>, node: LazyId, decls: &[AttrDecl]) -> bool {
        let attrs = doc.attrs(node);
        // Present attributes must be declared and valid (namespace
        // declarations are not schema-validated).
        for a in attrs {
            let aname = doc.name_bytes(a.name);
            if aname.starts_with(b"xmlns") {
                continue;
            }
            let Some(d) = decls.iter().find(|d| d.name == aname) else {
                return false;
            };
            let val = doc.value(a.value);
            let ok = match d.ty {
                TypeRef::Builtin(bt) => value::check_builtin(bt, val, &mut NullProbe),
                TypeRef::Def(id) => match &self.schema.types[ix(id.0)] {
                    TypeDef::Simple(st) => check_simple(st, val),
                    TypeDef::Complex(_) => false,
                },
            };
            if !ok {
                return false;
            }
        }
        // Required attributes must be present.
        decls
            .iter()
            .filter(|d| d.required)
            .all(|d| attrs.iter().any(|a| doc.name_bytes(a.name) == d.name.as_slice()))
    }
}

fn check_simple(st: &SimpleType, text: &[u8]) -> bool {
    value::check_builtin(st.base, text, &mut NullProbe)
        && value::check_facets(&st.facets, text, &mut NullProbe)
}

fn no_element_children(doc: &LazyDoc<'_>, node: LazyId) -> bool {
    let mut cur = doc.first_child(node);
    while let Some(c) = cur {
        if matches!(doc.kind(c), LazyKind::Element(_)) {
            return false;
        }
        cur = doc.next_sibling(c);
    }
    true
}

/// Concatenated direct text of `node`, borrowing when there is at most one
/// text child (the overwhelmingly common case for simple-typed leaves).
fn direct_text<'d>(doc: &'d LazyDoc<'_>, node: LazyId) -> Cow<'d, [u8]> {
    let mut found: Option<&'d [u8]> = None;
    let mut cur = doc.first_child(node);
    while let Some(c) = cur {
        if let LazyKind::Text(v) = doc.kind(c) {
            match found {
                None => found = Some(doc.value(v)),
                Some(firstv) => {
                    // Rare: multiple text children (e.g. CDATA splits).
                    let mut out = firstv.to_vec();
                    out.extend_from_slice(doc.value(v));
                    let mut rest = doc.next_sibling(c);
                    while let Some(r) = rest {
                        if let LazyKind::Text(rv) = doc.kind(r) {
                            out.extend_from_slice(doc.value(rv));
                        }
                        rest = doc.next_sibling(r);
                    }
                    return Cow::Owned(out);
                }
            }
        }
        cur = doc.next_sibling(c);
    }
    match found {
        Some(v) => Cow::Borrowed(v),
        None => Cow::Borrowed(b""),
    }
}

/// Deterministic Glushkov position automaton over an interned name
/// alphabet. State 0 is the start; state `p + 1` is position `p`.
#[derive(Debug, Clone)]
struct Dfa {
    /// Element name → symbol id.
    lookup: HashMap<Vec<u8>, u32, FnvBuild>,
    nsyms: u32,
    /// `trans[state * nsyms + sym]`, [`DEAD`] where undefined.
    trans: Vec<u32>,
    accept: Vec<bool>,
}

impl Dfa {
    /// One transition per child; a name outside the alphabet, a dead
    /// transition, or a non-accepting final state all reject.
    fn accepts<'n>(&self, names: impl Iterator<Item = &'n [u8]>) -> bool {
        let mut state = 0u32;
        for name in names {
            let Some(&sym) = self.lookup.get(name) else {
                return false;
            };
            state = self.trans[ix(state * self.nsyms + sym)];
            if state == DEAD {
                return false;
            }
        }
        self.accept[ix(state)]
    }

    /// Build the automaton, or `None` when the model expands too far or is
    /// not deterministic (greedy interpretation could then disagree).
    fn try_build(particle: &Particle) -> Option<Dfa> {
        let mut alpha: Vec<Vec<u8>> = Vec::new();
        let rx = lower(particle, &mut alpha)?;
        let mut pos_sym: Vec<u32> = Vec::new();
        let mut follow: Vec<Vec<u32>> = Vec::new();
        let g = glushkov(&rx, &mut pos_sym, &mut follow);
        let npos = pos_sym.len();
        if npos > MAX_POSITIONS {
            return None;
        }
        let nsyms = alpha.len();
        let nstates = npos + 1;
        let mut trans = vec![DEAD; nstates * nsyms];
        let fill = |state: usize, set: &[u32], trans: &mut Vec<u32>| -> Option<()> {
            for &p in set {
                let sym = pos_sym[ix(p)];
                let slot = state * nsyms + ix(sym);
                let target = p + 1;
                if trans[slot] != DEAD && trans[slot] != target {
                    // Two distinct positions reachable on one symbol: the
                    // model is not 1-unambiguous.
                    return None;
                }
                trans[slot] = target;
            }
            Some(())
        };
        fill(0, &g.first, &mut trans)?;
        for (p, f) in follow.iter().enumerate() {
            fill(p + 1, f, &mut trans)?;
        }
        let mut accept = vec![false; nstates];
        accept[0] = g.nullable;
        for &p in &g.last {
            accept[ix(p) + 1] = true;
        }
        let mut lookup: HashMap<Vec<u8>, u32, FnvBuild> = HashMap::default();
        for (i, name) in alpha.into_iter().enumerate() {
            lookup.insert(name, small_u32(i));
        }
        Some(Dfa { lookup, nsyms: small_u32(nsyms), trans, accept })
    }
}

/// Count-expanded regular expression over symbol ids.
#[derive(Debug, Clone)]
enum Rx {
    Sym(u32),
    Seq(Vec<Rx>),
    Alt(Vec<Rx>),
    Opt(Box<Rx>),
    Star(Box<Rx>),
}

/// Lower a particle to a regex, expanding occurrence counts. `None` when
/// the expansion would be too large or the particle is `xs:all`
/// (order-free content is exponential as a regex).
fn lower(p: &Particle, alpha: &mut Vec<Vec<u8>>) -> Option<Rx> {
    match p {
        Particle::Element { name, min, max, .. } => {
            let sym = intern(alpha, name);
            repeat(Rx::Sym(sym), *min, *max)
        }
        Particle::Sequence { items, min, max } => {
            let body = Rx::Seq(items.iter().map(|i| lower(i, alpha)).collect::<Option<Vec<_>>>()?);
            repeat(body, *min, *max)
        }
        Particle::Choice { items, min, max } => {
            let bodies = items.iter().map(|i| lower(i, alpha)).collect::<Option<Vec<_>>>()?;
            // The greedy interpreter tries alternatives in order and a
            // nullable one always matches (zero-width), so alternatives
            // after it are unreachable — regex alternation would disagree.
            if bodies.len() > 1 && bodies[..bodies.len() - 1].iter().any(rx_nullable) {
                return None;
            }
            repeat(Rx::Alt(bodies), *min, *max)
        }
        Particle::All { .. } => None,
    }
}

fn intern(alpha: &mut Vec<Vec<u8>>, name: &[u8]) -> u32 {
    match alpha.iter().position(|n| n == name) {
        Some(i) => small_u32(i),
        None => {
            alpha.push(name.to_vec());
            small_u32(alpha.len() - 1)
        }
    }
}

/// `r{min,max}` as copies: `min` mandatory, then optionals (or a star for
/// `unbounded`).
fn repeat(r: Rx, min: u32, max: u32) -> Option<Rx> {
    if min == 1 && max == 1 {
        return Some(r);
    }
    if max == MAX_UNBOUNDED {
        if min > MAX_COUNT_EXPANSION {
            return None;
        }
        // The greedy interpreter's zero-width repetition guard stops an
        // unbounded group after one empty body match, so with `min > 0` it
        // rejects words the regex accepts (e.g. `(a?){2,}` on "").
        if min > 0 && rx_nullable(&r) {
            return None;
        }
        let mut items: Vec<Rx> = (0..min).map(|_| r.clone()).collect();
        items.push(Rx::Star(Box::new(r)));
        return Some(Rx::Seq(items));
    }
    if max < min || min > MAX_COUNT_EXPANSION || max - min > MAX_COUNT_EXPANSION {
        return None;
    }
    let mut items: Vec<Rx> = (0..min).map(|_| r.clone()).collect();
    for _ in min..max {
        items.push(Rx::Opt(Box::new(r.clone())));
    }
    Some(Rx::Seq(items))
}

/// Can the expression match the empty word?
fn rx_nullable(rx: &Rx) -> bool {
    match rx {
        Rx::Sym(_) => false,
        Rx::Seq(items) => items.iter().all(rx_nullable),
        Rx::Alt(items) => items.iter().any(rx_nullable),
        Rx::Opt(_) | Rx::Star(_) => true,
    }
}

/// Nullability plus first/last position sets of a subexpression.
struct G {
    nullable: bool,
    first: Vec<u32>,
    last: Vec<u32>,
}

/// Classic Glushkov construction: assign positions to symbol leaves in
/// reading order, accumulate follow sets.
fn glushkov(rx: &Rx, pos_sym: &mut Vec<u32>, follow: &mut Vec<Vec<u32>>) -> G {
    match rx {
        Rx::Sym(s) => {
            let p = small_u32(pos_sym.len());
            pos_sym.push(*s);
            follow.push(Vec::new());
            G { nullable: false, first: vec![p], last: vec![p] }
        }
        Rx::Seq(items) => {
            let mut nullable = true;
            let mut first: Vec<u32> = Vec::new();
            let mut lasts: Vec<u32> = Vec::new();
            for it in items {
                let g = glushkov(it, pos_sym, follow);
                for &l in &lasts {
                    follow[ix(l)].extend_from_slice(&g.first);
                }
                if nullable {
                    first.extend_from_slice(&g.first);
                }
                if g.nullable {
                    lasts.extend_from_slice(&g.last);
                } else {
                    lasts = g.last;
                }
                nullable &= g.nullable;
            }
            G { nullable, first, last: lasts }
        }
        Rx::Alt(items) => {
            let mut nullable = false;
            let mut first: Vec<u32> = Vec::new();
            let mut last: Vec<u32> = Vec::new();
            for it in items {
                let g = glushkov(it, pos_sym, follow);
                nullable |= g.nullable;
                first.extend_from_slice(&g.first);
                last.extend_from_slice(&g.last);
            }
            G { nullable, first, last }
        }
        Rx::Opt(r) => {
            let g = glushkov(r, pos_sym, follow);
            G { nullable: true, ..g }
        }
        Rx::Star(r) => {
            let g = glushkov(r, pos_sym, follow);
            for &l in &g.last {
                let firsts = g.first.clone();
                follow[ix(l)].extend_from_slice(&firsts);
            }
            G { nullable: true, first: g.first, last: g.last }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::TBuf;
    use crate::lazy::parse_document_lazy;
    use crate::parser::parse_document;
    use crate::samples;
    use crate::schema::types::BuiltinType;

    /// Both validators must agree on the whole-document verdict.
    fn assert_verdicts(schema: &Schema, inputs: &[&[u8]]) {
        let auto = SchemaAutomaton::compile(schema);
        for input in inputs {
            let eager = parse_document(TBuf::msg(input), &mut NullProbe).unwrap();
            let lazy = parse_document_lazy(input).unwrap();
            let want = schema.validate(&eager, &mut NullProbe).unwrap().is_valid();
            let got = auto.validate_document(&lazy);
            assert_eq!(got, want, "verdicts differ on {:?}", String::from_utf8_lossy(input));
        }
    }

    #[test]
    fn corpus_schema_agrees() {
        let s = Schema::compile(samples::PURCHASE_ORDER_XSD).unwrap();
        let auto = SchemaAutomaton::compile(&s);
        assert!(auto.dfa_count() > 0, "corpus content models should compile to DFAs");
        assert_verdicts(
            &s,
            &[samples::PURCHASE_ORDER_OK, samples::PURCHASE_ORDER_BAD, b"<mystery/>", b"<order/>"],
        );
    }

    #[test]
    fn structure_and_value_violations_agree() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="r">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="a" type="xs:string"/>
                    <xs:element name="opt" type="xs:integer" minOccurs="0"/>
                    <xs:element name="b" type="xs:string" maxOccurs="3"/>
                  </xs:sequence>
                  <xs:attribute name="id" type="xs:integer" use="required"/>
                </xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert_verdicts(
            &s,
            &[
                br#"<r id="1"><a>x</a><b>y</b></r>"#,
                br#"<r id="1"><a>x</a><opt>5</opt><b>y</b></r>"#,
                br#"<r id="1"><a>x</a><opt>no</opt><b>y</b></r>"#, // bad value
                br#"<r id="1"><b>y</b><a>x</a></r>"#,              // order
                br#"<r id="1"><a>x</a><b>y</b><b>y</b><b>y</b><b>y</b></r>"#, // too many
                br#"<r><a>x</a><b>y</b></r>"#,                     // missing attr
                br#"<r id="x"><a>x</a><b>y</b></r>"#,              // bad attr value
                br#"<r id="1" zz="1"><a>x</a><b>y</b></r>"#,       // unknown attr
                br#"<r id="1"><a>x</a>loose<b>y</b></r>"#,         // stray text
                br#"<r id="1"><a>x</a><zz/><b>y</b></r>"#,         // unknown child
            ],
        );
    }

    #[test]
    fn all_group_uses_greedy_fallback_and_agrees() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="r">
                <xs:complexType><xs:all>
                  <xs:element name="a" type="xs:string"/>
                  <xs:element name="b" type="xs:string"/>
                </xs:all></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        let auto = SchemaAutomaton::compile(&s);
        assert_eq!(auto.dfa_count(), 0, "xs:all must use the greedy interpreter");
        assert_verdicts(
            &s,
            &[
                b"<r><a>1</a><b>2</b></r>",
                b"<r><b>2</b><a>1</a></r>",
                b"<r><a>1</a></r>",
                b"<r><a>1</a><a>2</a><b>3</b></r>",
            ],
        );
    }

    #[test]
    fn ambiguous_model_falls_back_to_greedy() {
        // seq[a?, a]: not 1-unambiguous — a DFA would accept "a" but the
        // greedy interpreter rejects it. The builder must refuse the DFA.
        let p = Particle::Sequence {
            items: vec![
                Particle::Element {
                    name: b"a".to_vec(),
                    ty: TypeRef::Builtin(BuiltinType::String),
                    min: 0,
                    max: 1,
                },
                Particle::Element {
                    name: b"a".to_vec(),
                    ty: TypeRef::Builtin(BuiltinType::String),
                    min: 1,
                    max: 1,
                },
            ],
            min: 1,
            max: 1,
        };
        assert!(Dfa::try_build(&p).is_none());
    }

    #[test]
    fn huge_counts_fall_back() {
        let p = Particle::Element {
            name: b"a".to_vec(),
            ty: TypeRef::Builtin(BuiltinType::String),
            min: 0,
            max: 100,
        };
        assert!(Dfa::try_build(&p).is_none());
        let p = Particle::Element {
            name: b"a".to_vec(),
            ty: TypeRef::Builtin(BuiltinType::String),
            min: 2,
            max: MAX_UNBOUNDED,
        };
        assert!(Dfa::try_build(&p).is_some(), "bounded min with unbounded max expands fine");
    }

    /// Property pin: wherever a DFA builds, it must agree with the greedy
    /// interpreter on full-match verdicts — over randomized particles and
    /// child sequences.
    #[test]
    fn dfa_agrees_with_greedy_interpreter() {
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        const NAMES: [&[u8]; 4] = [b"a", b"b", b"c", b"d"];
        fn gen_particle(next: &mut impl FnMut() -> u32, depth: u32) -> Particle {
            let (min, max) = match next() % 5 {
                0 => (0, 1),
                1 => (1, 1),
                2 => (1, 2),
                3 => (0, MAX_UNBOUNDED),
                _ => (1, MAX_UNBOUNDED),
            };
            let kind = if depth == 0 { 0 } else { next() % 3 };
            match kind {
                0 => Particle::Element {
                    name: NAMES[(next() % 4) as usize].to_vec(),
                    ty: TypeRef::Builtin(BuiltinType::String),
                    min,
                    max,
                },
                k => {
                    let n = 1 + next() % 3;
                    let items = (0..n).map(|_| gen_particle(next, depth - 1)).collect::<Vec<_>>();
                    if k == 1 {
                        Particle::Sequence { items, min, max }
                    } else {
                        Particle::Choice { items, min, max }
                    }
                }
            }
        }
        let mut dfas = 0;
        for _ in 0..400 {
            let p = gen_particle(&mut next, 2);
            let Some(dfa) = Dfa::try_build(&p) else {
                continue;
            };
            dfas += 1;
            for _ in 0..40 {
                let len = (next() % 7) as usize;
                let seq: Vec<&[u8]> = (0..len).map(|_| NAMES[(next() % 4) as usize]).collect();
                let mut cursor = 0;
                let greedy = validate::match_particle(&p, &seq, 0, &mut NullProbe, &mut cursor)
                    == Some(seq.len());
                let fast = dfa.accepts(seq.iter().copied());
                assert_eq!(fast, greedy, "disagree on {seq:?} for {p:?}");
            }
        }
        assert!(dfas > 50, "expected a healthy share of DFA-compilable models, got {dfas}");
    }

    #[test]
    fn validates_subtree_inside_envelope() {
        let s = Schema::compile(samples::PURCHASE_ORDER_XSD).unwrap();
        let auto = SchemaAutomaton::compile(&s);
        let payload = br#"<order id="7" currency="USD"><customer>A</customer>
            <date>2007-03-14</date>
            <item line="1"><sku>AB1234</sku><name>x</name><quantity>1</quantity>
            <price>1.00</price></item></order>"#;
        let env = crate::soap::wrap_envelope(payload);
        let lazy = parse_document_lazy(&env).unwrap();
        let payload = crate::soap::payload_root_lazy(&lazy).unwrap();
        assert!(auto.validate(&lazy, payload));
    }
}
