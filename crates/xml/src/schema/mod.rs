//! XSD schema-validation subset.
//!
//! The paper's SV use case ("the predominant CPU intensive case", §3.2.1)
//! validates each incoming message against a pre-stored schema: conforming
//! messages route to the destination endpoint, non-conforming ones to the
//! error endpoint. This module implements the W3C XML Schema subset that an
//! AON device's validation stage needs:
//!
//! * global `xs:element` declarations with named or anonymous types;
//! * `xs:complexType` with `xs:sequence` / `xs:choice` / `xs:all` content
//!   models, nested groups, `minOccurs` / `maxOccurs` (including
//!   `unbounded`), attributes (`use="required"` / `optional`), and
//!   `simpleContent` text;
//! * `xs:simpleType` restrictions over the built-in types `string`,
//!   `integer`, `nonNegativeInteger`, `positiveInteger`, `decimal`,
//!   `boolean`, `date`, `anyURI`, `token` — with the facets `enumeration`,
//!   `pattern` (a self-contained regex-lite engine, see [`pattern`]),
//!   `minLength` / `maxLength` / `length`, and `minInclusive` /
//!   `maxInclusive`.
//!
//! Schemas are *compiled* from their XSD document (parsed with this crate's
//! own parser) into flat record tables that notionally live in the `STATIC`
//! region — device configuration, warm in cache across requests — while
//! validation walks the cold per-message DOM. That split is what drives the
//! paper's observation that SV shows the best temporal locality of the
//! three use cases (lowest L2MPI, Figure 4).

pub mod automaton;
mod parse;
pub mod pattern;
mod types;
mod validate;
mod value;

pub use automaton::SchemaAutomaton;
pub use pattern::Pattern;
pub use types::{
    AttrDecl, BuiltinType, ComplexType, ContentModel, ElemDecl, Facets, Particle, SimpleType,
    TypeId, TypeRef, MAX_UNBOUNDED,
};
pub use validate::{Validity, Violation, ViolationKind};

use crate::dom::Document;
use crate::error::XmlResult;
use crate::input::TBuf;
use aon_trace::{NullProbe, Probe};

/// A compiled schema.
#[derive(Debug, Clone)]
pub struct Schema {
    pub(crate) elements: Vec<ElemDecl>,
    pub(crate) types: Vec<types::TypeDef>,
    /// Total compiled records (elements + types + particles), for tracing.
    pub(crate) record_count: u32,
}

impl Schema {
    /// Compile a schema from XSD source text.
    ///
    /// Compilation is untraced (it happens once at simulated-server
    /// start-up, outside the measured request path).
    pub fn compile(xsd: &[u8]) -> XmlResult<Schema> {
        let doc = crate::parser::parse_document(TBuf::msg(xsd), &mut NullProbe)?;
        parse::compile_from_doc(&doc)
    }

    /// Number of global element declarations.
    pub fn element_count(&self) -> usize {
        self.elements.len()
    }

    /// Number of compiled type definitions.
    pub fn type_count(&self) -> usize {
        self.types.len()
    }

    /// Number of compiled records (elements + types + particles) — the
    /// schema's STATIC-region footprint in records.
    pub fn record_count(&self) -> u32 {
        self.record_count
    }

    /// Find a global element declaration by name.
    pub fn find_element(&self, name: &[u8]) -> Option<&ElemDecl> {
        self.elements.iter().find(|e| e.name == name)
    }

    /// Validate a parsed document. The document's root element must match a
    /// global element declaration.
    pub fn validate<P: Probe>(&self, doc: &Document, p: &mut P) -> XmlResult<Validity> {
        validate::validate_document(self, doc, p)
    }

    /// Validate the subtree rooted at `node` (for payloads inside an
    /// envelope, e.g. a SOAP body member).
    pub fn validate_node<P: Probe>(
        &self,
        doc: &Document,
        node: crate::dom::NodeId,
        p: &mut P,
    ) -> Validity {
        validate::validate_subtree(self, doc, node, p)
    }

    /// Convenience: parse + validate raw message bytes in one call.
    pub fn validate_bytes<P: Probe>(&self, msg: &[u8], p: &mut P) -> XmlResult<Validity> {
        let doc = crate::parser::parse_document(TBuf::msg(msg), p)?;
        self.validate(&doc, p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::samples;

    fn po_schema() -> Schema {
        Schema::compile(samples::PURCHASE_ORDER_XSD).expect("sample schema compiles")
    }

    #[test]
    fn sample_schema_compiles() {
        let s = po_schema();
        assert!(s.element_count() >= 1);
        assert!(s.type_count() >= 2);
        assert!(s.find_element(b"order").is_some());
    }

    #[test]
    fn valid_sample_message_passes() {
        let s = po_schema();
        let v = s.validate_bytes(samples::PURCHASE_ORDER_OK, &mut NullProbe).unwrap();
        assert!(v.is_valid(), "expected valid, got {v:?}");
    }

    #[test]
    fn invalid_sample_message_fails() {
        let s = po_schema();
        let v = s.validate_bytes(samples::PURCHASE_ORDER_BAD, &mut NullProbe).unwrap();
        assert!(!v.is_valid());
    }

    #[test]
    fn unknown_root_is_invalid() {
        let s = po_schema();
        let v = s.validate_bytes(b"<mystery/>", &mut NullProbe).unwrap();
        assert!(!v.is_valid());
        assert!(matches!(v.violations()[0].kind, ViolationKind::UnknownElement));
    }

    #[test]
    fn missing_required_child_is_invalid() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="r">
                <xs:complexType><xs:sequence>
                  <xs:element name="a" type="xs:string"/>
                  <xs:element name="b" type="xs:string"/>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert!(s.validate_bytes(b"<r><a>x</a><b>y</b></r>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<r><a>x</a></r>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<r><b>y</b><a>x</a></r>", &mut NullProbe).unwrap().is_valid());
    }

    #[test]
    fn occurs_bounds_enforced() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="r">
                <xs:complexType><xs:sequence>
                  <xs:element name="i" type="xs:integer" minOccurs="1" maxOccurs="3"/>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert!(!s.validate_bytes(b"<r/>", &mut NullProbe).unwrap().is_valid());
        assert!(s.validate_bytes(b"<r><i>1</i></r>", &mut NullProbe).unwrap().is_valid());
        assert!(s
            .validate_bytes(b"<r><i>1</i><i>2</i><i>3</i></r>", &mut NullProbe)
            .unwrap()
            .is_valid());
        assert!(!s
            .validate_bytes(b"<r><i>1</i><i>2</i><i>3</i><i>4</i></r>", &mut NullProbe)
            .unwrap()
            .is_valid());
    }

    #[test]
    fn choice_content_model() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="r">
                <xs:complexType><xs:choice>
                  <xs:element name="a" type="xs:string"/>
                  <xs:element name="b" type="xs:string"/>
                </xs:choice></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert!(s.validate_bytes(b"<r><a>x</a></r>", &mut NullProbe).unwrap().is_valid());
        assert!(s.validate_bytes(b"<r><b>x</b></r>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<r><a>x</a><b>y</b></r>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<r/>", &mut NullProbe).unwrap().is_valid());
    }

    #[test]
    fn all_content_model_any_order() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="r">
                <xs:complexType><xs:all>
                  <xs:element name="a" type="xs:string"/>
                  <xs:element name="b" type="xs:string"/>
                </xs:all></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert!(s.validate_bytes(b"<r><a>1</a><b>2</b></r>", &mut NullProbe).unwrap().is_valid());
        assert!(s.validate_bytes(b"<r><b>2</b><a>1</a></r>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<r><a>1</a></r>", &mut NullProbe).unwrap().is_valid());
        assert!(!s
            .validate_bytes(b"<r><a>1</a><a>2</a><b>3</b></r>", &mut NullProbe)
            .unwrap()
            .is_valid());
    }

    #[test]
    fn required_attribute_enforced() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="r">
                <xs:complexType>
                  <xs:attribute name="id" type="xs:integer" use="required"/>
                  <xs:attribute name="note" type="xs:string"/>
                </xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert!(s.validate_bytes(br#"<r id="3"/>"#, &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<r/>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(br#"<r id="x"/>"#, &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(br#"<r id="1" other="y"/>"#, &mut NullProbe).unwrap().is_valid());
    }

    #[test]
    fn simple_type_facets() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="code">
                <xs:simpleType>
                  <xs:restriction base="xs:string">
                    <xs:pattern value="[A-Z]{2}-[0-9]+"/>
                    <xs:maxLength value="8"/>
                  </xs:restriction>
                </xs:simpleType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert!(s.validate_bytes(b"<code>AB-123</code>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<code>ab-123</code>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<code>AB-123456</code>", &mut NullProbe).unwrap().is_valid());
    }

    #[test]
    fn enumeration_facet() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="cur">
                <xs:simpleType>
                  <xs:restriction base="xs:string">
                    <xs:enumeration value="USD"/>
                    <xs:enumeration value="EUR"/>
                  </xs:restriction>
                </xs:simpleType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert!(s.validate_bytes(b"<cur>USD</cur>", &mut NullProbe).unwrap().is_valid());
        assert!(s.validate_bytes(b"<cur>EUR</cur>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<cur>GBP</cur>", &mut NullProbe).unwrap().is_valid());
    }

    #[test]
    fn numeric_range_facets() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:element name="qty">
                <xs:simpleType>
                  <xs:restriction base="xs:integer">
                    <xs:minInclusive value="1"/>
                    <xs:maxInclusive value="100"/>
                  </xs:restriction>
                </xs:simpleType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert!(s.validate_bytes(b"<qty>1</qty>", &mut NullProbe).unwrap().is_valid());
        assert!(s.validate_bytes(b"<qty>100</qty>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<qty>0</qty>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<qty>101</qty>", &mut NullProbe).unwrap().is_valid());
        assert!(!s.validate_bytes(b"<qty>ten</qty>", &mut NullProbe).unwrap().is_valid());
    }

    #[test]
    fn named_type_references() {
        let s = Schema::compile(
            br#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
              <xs:simpleType name="sku">
                <xs:restriction base="xs:string"><xs:pattern value="S[0-9]+"/></xs:restriction>
              </xs:simpleType>
              <xs:element name="r">
                <xs:complexType><xs:sequence>
                  <xs:element name="item" type="sku" maxOccurs="unbounded"/>
                </xs:sequence></xs:complexType>
              </xs:element>
            </xs:schema>"#,
        )
        .unwrap();
        assert!(s
            .validate_bytes(b"<r><item>S1</item><item>S22</item></r>", &mut NullProbe)
            .unwrap()
            .is_valid());
        assert!(!s.validate_bytes(b"<r><item>X1</item></r>", &mut NullProbe).unwrap().is_valid());
    }

    #[test]
    fn validation_produces_trace() {
        use aon_trace::Tracer;
        let s = po_schema();
        let mut t = Tracer::new();
        let v = s.validate_bytes(samples::PURCHASE_ORDER_OK, &mut t).unwrap();
        assert!(v.is_valid());
        let st = t.finish().stats();
        // SV is the CPU-heavy use case: the trace must be substantial.
        assert!(st.ops > 2_000, "expected substantial trace, got {} ops", st.ops);
        assert!(st.branches > 200);
    }

    #[test]
    fn bad_schema_rejected() {
        for bad in [
            &b"<notaschema/>"[..],
            b"<xs:schema xmlns:xs='x'><xs:element/></xs:schema>", // element without name
            b"<xs:schema xmlns:xs='x'><xs:element name='e' type='nosuch'/></xs:schema>",
        ] {
            assert!(Schema::compile(bad).is_err(), "expected compile error");
        }
    }
}
