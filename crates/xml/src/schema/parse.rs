//! XSD document → compiled [`Schema`].
//!
//! Schema compilation happens once, at simulated-server start-up, so it
//! reads the schema's own DOM untraced ([`NullProbe`]). The compiler is a
//! conventional two-pass design: first allocate [`TypeId`] slots for all
//! named types (so forward references resolve), then compile bodies.

use super::types::{
    AttrDecl, BuiltinType, ComplexType, ContentModel, ElemDecl, Facets, Particle, SimpleType,
    TypeDef, TypeId, TypeRef, MAX_UNBOUNDED,
};
use super::{pattern::Pattern, Schema};
use crate::dom::{Document, NodeId, NodeKind};
use crate::error::{XmlError, XmlErrorKind, XmlResult};
use aon_trace::NullProbe;
use std::collections::HashMap;

fn err(offset: usize) -> XmlError {
    XmlError::at(XmlErrorKind::BadSchema, offset)
}

/// Strip a `prefix:` from a QName.
fn local_name(name: &[u8]) -> &[u8] {
    match name.iter().rposition(|&b| b == b':') {
        Some(i) => &name[i + 1..],
        None => name,
    }
}

struct SchemaCompiler<'d> {
    doc: &'d Document,
    types: Vec<Option<TypeDef>>,
    by_name: HashMap<Vec<u8>, TypeId>,
}

/// Compile a parsed XSD document.
pub fn compile_from_doc(doc: &Document) -> XmlResult<Schema> {
    let root = doc.root()?;
    if local_name(&element_name(doc, root).ok_or_else(|| err(0))?) != b"schema" {
        return Err(err(0));
    }
    let mut c = SchemaCompiler { doc, types: Vec::new(), by_name: HashMap::new() };

    // Pass 1: allocate slots for named top-level types.
    for child in element_children(doc, root) {
        let tag = element_name(doc, child).expect("element child");
        let local = local_name(&tag).to_vec();
        if local == b"complexType" || local == b"simpleType" {
            let name = attr(doc, child, b"name").ok_or_else(|| err(0))?;
            let id = TypeId(c.types.len() as u32);
            c.types.push(None);
            if c.by_name.insert(name, id).is_some() {
                return Err(err(0)); // duplicate type name
            }
        }
    }

    // Pass 2: compile named type bodies.
    let mut named_idx = 0u32;
    for child in element_children(doc, root) {
        let tag = element_name(doc, child).expect("element child");
        match local_name(&tag) {
            b"complexType" => {
                let def = TypeDef::Complex(c.compile_complex(child)?);
                c.types[named_idx as usize] = Some(def);
                named_idx += 1;
            }
            b"simpleType" => {
                let def = TypeDef::Simple(c.compile_simple(child)?);
                c.types[named_idx as usize] = Some(def);
                named_idx += 1;
            }
            _ => {}
        }
    }

    // Pass 3: global element declarations.
    let mut elements = Vec::new();
    for child in element_children(doc, root) {
        let tag = element_name(doc, child).expect("element child");
        if local_name(&tag) == b"element" {
            let (name, ty) = c.compile_element_decl(child)?;
            elements.push(ElemDecl { name, ty });
        }
    }
    if elements.is_empty() {
        return Err(err(0));
    }

    let types: Vec<TypeDef> =
        c.types.into_iter().map(|t| t.ok_or_else(|| err(0))).collect::<XmlResult<_>>()?;
    let record_count = elements.len() as u32
        + types
            .iter()
            .map(|t| match t {
                TypeDef::Simple(_) => 1,
                TypeDef::Complex(ct) => match &ct.content {
                    ContentModel::Children(p) => 1 + p.record_count(),
                    _ => 1,
                },
            })
            .sum::<u32>();
    Ok(Schema { elements, types, record_count })
}

impl SchemaCompiler<'_> {
    /// `<xs:element name=".." type=".."/>` or with inline type. Returns
    /// (name, type-ref).
    fn compile_element_decl(&mut self, node: NodeId) -> XmlResult<(Vec<u8>, TypeRef)> {
        let name = attr(self.doc, node, b"name").ok_or_else(|| err(0))?;
        let ty = if let Some(tyname) = attr(self.doc, node, b"type") {
            self.resolve_type(&tyname)?
        } else {
            // Inline anonymous type.
            let mut inline = None;
            for child in element_children(self.doc, node) {
                let tag = element_name(self.doc, child).expect("element child");
                match local_name(&tag) {
                    b"complexType" => {
                        let def = TypeDef::Complex(self.compile_complex(child)?);
                        inline = Some(self.push_anon(def));
                    }
                    b"simpleType" => {
                        let def = TypeDef::Simple(self.compile_simple(child)?);
                        inline = Some(self.push_anon(def));
                    }
                    b"annotation" => {}
                    _ => return Err(err(0)),
                }
            }
            match inline {
                Some(id) => TypeRef::Def(id),
                // No type at all: xs:anyType ~ string.
                None => TypeRef::Builtin(BuiltinType::String),
            }
        };
        Ok((name, ty))
    }

    fn push_anon(&mut self, def: TypeDef) -> TypeId {
        let id = TypeId(self.types.len() as u32);
        self.types.push(Some(def));
        id
    }

    fn resolve_type(&self, qname: &[u8]) -> XmlResult<TypeRef> {
        let local = local_name(qname);
        if let Some(bt) = BuiltinType::by_local_name(local) {
            return Ok(TypeRef::Builtin(bt));
        }
        self.by_name.get(local).copied().map(TypeRef::Def).ok_or_else(|| err(0))
    }

    /// `<xs:complexType>` body.
    fn compile_complex(&mut self, node: NodeId) -> XmlResult<ComplexType> {
        let mut attrs = Vec::new();
        let mut content = ContentModel::Empty;
        for child in element_children(self.doc, node) {
            let tag = element_name(self.doc, child).expect("element child");
            match local_name(&tag) {
                b"sequence" => {
                    content = ContentModel::Children(self.compile_group(child, GroupKind::Seq)?)
                }
                b"choice" => {
                    content = ContentModel::Children(self.compile_group(child, GroupKind::Choice)?)
                }
                b"all" => {
                    let mut items = Vec::new();
                    for g in element_children(self.doc, child) {
                        items.push(self.compile_particle(g)?);
                    }
                    content = ContentModel::Children(Particle::All { items });
                }
                b"attribute" => attrs.push(self.compile_attr(child)?),
                b"simpleContent" => {
                    // <xs:extension base="..."> with attributes.
                    for ext in element_children(self.doc, child) {
                        let etag = element_name(self.doc, ext).expect("element child");
                        if local_name(&etag) == b"extension" {
                            let base = attr(self.doc, ext, b"base").ok_or_else(|| err(0))?;
                            content = ContentModel::Text(self.resolve_type(&base)?);
                            for a in element_children(self.doc, ext) {
                                let atag = element_name(self.doc, a).expect("element child");
                                if local_name(&atag) == b"attribute" {
                                    attrs.push(self.compile_attr(a)?);
                                }
                            }
                        }
                    }
                }
                b"annotation" => {}
                _ => return Err(err(0)),
            }
        }
        Ok(ComplexType { attrs, content })
    }

    fn compile_attr(&mut self, node: NodeId) -> XmlResult<AttrDecl> {
        let name = attr(self.doc, node, b"name").ok_or_else(|| err(0))?;
        let required = attr(self.doc, node, b"use").as_deref() == Some(b"required");
        let ty = match attr(self.doc, node, b"type") {
            Some(t) => self.resolve_type(&t)?,
            None => {
                // Inline simple type or default string.
                let mut found = TypeRef::Builtin(BuiltinType::String);
                for child in element_children(self.doc, node) {
                    let tag = element_name(self.doc, child).expect("element child");
                    if local_name(&tag) == b"simpleType" {
                        let def = TypeDef::Simple(self.compile_simple(child)?);
                        found = TypeRef::Def(self.push_anon(def));
                    }
                }
                found
            }
        };
        Ok(AttrDecl { name, ty, required })
    }

    fn compile_group(&mut self, node: NodeId, kind: GroupKind) -> XmlResult<Particle> {
        let (min, max) = occurs(self.doc, node)?;
        let mut items = Vec::new();
        for child in element_children(self.doc, node) {
            items.push(self.compile_particle(child)?);
        }
        Ok(match kind {
            GroupKind::Seq => Particle::Sequence { items, min, max },
            GroupKind::Choice => Particle::Choice { items, min, max },
        })
    }

    fn compile_particle(&mut self, node: NodeId) -> XmlResult<Particle> {
        let tag = element_name(self.doc, node).ok_or_else(|| err(0))?;
        match local_name(&tag) {
            b"element" => {
                let (min, max) = occurs(self.doc, node)?;
                let (name, ty) = self.compile_element_decl(node)?;
                Ok(Particle::Element { name, ty, min, max })
            }
            b"sequence" => self.compile_group(node, GroupKind::Seq),
            b"choice" => self.compile_group(node, GroupKind::Choice),
            _ => Err(err(0)),
        }
    }

    /// `<xs:simpleType>` body: a restriction with facets.
    fn compile_simple(&mut self, node: NodeId) -> XmlResult<SimpleType> {
        for child in element_children(self.doc, node) {
            let tag = element_name(self.doc, child).expect("element child");
            if local_name(&tag) != b"restriction" {
                continue;
            }
            let base_name = attr(self.doc, child, b"base").ok_or_else(|| err(0))?;
            let base = BuiltinType::by_local_name(local_name(&base_name)).ok_or_else(|| err(0))?;
            let mut facets = Facets::default();
            for facet in element_children(self.doc, child) {
                let ftag = element_name(self.doc, facet).expect("element child");
                let value = attr(self.doc, facet, b"value").ok_or_else(|| err(0))?;
                match local_name(&ftag) {
                    b"enumeration" => facets.enumeration.push(value),
                    b"pattern" => {
                        let src = String::from_utf8(value).map_err(|_| err(0))?;
                        facets.pattern = Some(Pattern::compile(&src)?);
                    }
                    b"length" => facets.length = Some(parse_u32(&value)?),
                    b"minLength" => facets.min_length = Some(parse_u32(&value)?),
                    b"maxLength" => facets.max_length = Some(parse_u32(&value)?),
                    b"minInclusive" => facets.min_inclusive = Some(parse_i64(&value)?),
                    b"maxInclusive" => facets.max_inclusive = Some(parse_i64(&value)?),
                    b"whiteSpace" | b"fractionDigits" | b"totalDigits" => {}
                    _ => return Err(err(0)),
                }
            }
            return Ok(SimpleType { base, facets });
        }
        Err(err(0))
    }
}

#[derive(Clone, Copy)]
enum GroupKind {
    Seq,
    Choice,
}

fn parse_u32(v: &[u8]) -> XmlResult<u32> {
    std::str::from_utf8(v).ok().and_then(|s| s.trim().parse().ok()).ok_or_else(|| err(0))
}

fn parse_i64(v: &[u8]) -> XmlResult<i64> {
    std::str::from_utf8(v).ok().and_then(|s| s.trim().parse().ok()).ok_or_else(|| err(0))
}

/// `minOccurs` / `maxOccurs` of a particle node.
fn occurs(doc: &Document, node: NodeId) -> XmlResult<(u32, u32)> {
    let min = match attr(doc, node, b"minOccurs") {
        Some(v) => parse_u32(&v)?,
        None => 1,
    };
    let max = match attr(doc, node, b"maxOccurs") {
        Some(v) => {
            if v == b"unbounded" {
                MAX_UNBOUNDED
            } else {
                parse_u32(&v)?
            }
        }
        None => 1,
    };
    if max != MAX_UNBOUNDED && max < min {
        return Err(err(0));
    }
    Ok((min, max))
}

fn element_name(doc: &Document, node: NodeId) -> Option<Vec<u8>> {
    match doc.kind_t(node, &mut NullProbe) {
        NodeKind::Element(nm) => Some(doc.name_bytes(nm).to_vec()),
        _ => None,
    }
}

fn attr(doc: &Document, node: NodeId, name: &[u8]) -> Option<Vec<u8>> {
    doc.attr_value_t(node, name, &mut NullProbe).map(|s| doc.str_bytes(s).to_vec())
}

fn element_children(doc: &Document, node: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    let mut cur = doc.first_child_t(node, &mut NullProbe);
    while let Some(c) = cur {
        if matches!(doc.kind_t(c, &mut NullProbe), NodeKind::Element(_)) {
            out.push(c);
        }
        cur = doc.next_sibling_t(c, &mut NullProbe);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_name_strips_prefix() {
        assert_eq!(local_name(b"xs:element"), b"element");
        assert_eq!(local_name(b"element"), b"element");
        assert_eq!(local_name(b"a:b:c"), b"c");
    }

    #[test]
    fn occurs_defaults() {
        let doc = crate::parser::parse_document(crate::input::TBuf::msg(b"<e/>"), &mut NullProbe)
            .unwrap();
        let root = doc.root().unwrap();
        assert_eq!(occurs(&doc, root).unwrap(), (1, 1));
    }

    #[test]
    fn occurs_unbounded() {
        let doc = crate::parser::parse_document(
            crate::input::TBuf::msg(br#"<e minOccurs="0" maxOccurs="unbounded"/>"#),
            &mut NullProbe,
        )
        .unwrap();
        let root = doc.root().unwrap();
        assert_eq!(occurs(&doc, root).unwrap(), (0, MAX_UNBOUNDED));
    }

    #[test]
    fn occurs_invalid_range() {
        let doc = crate::parser::parse_document(
            crate::input::TBuf::msg(br#"<e minOccurs="3" maxOccurs="2"/>"#),
            &mut NullProbe,
        )
        .unwrap();
        assert!(occurs(&doc, doc.root().unwrap()).is_err());
    }
}
