//! Regex-lite engine for `xs:pattern` facets.
//!
//! A self-contained Thompson-NFA regular expression engine over bytes,
//! supporting the constructs that appear in real-world XSD patterns:
//!
//! * literals, `.`, escapes `\d \D \w \W \s \S` and escaped
//!   metacharacters;
//! * character classes `[a-z0-9_]`, negated classes `[^...]`, ranges;
//! * quantifiers `*`, `+`, `?`, `{n}`, `{n,}`, `{n,m}`;
//! * groups `(...)` and alternation `|`.
//!
//! Patterns are anchored at both ends (XSD semantics). Matching simulates
//! the NFA with a state set — linear time, no backtracking — and is traced:
//! each (input byte × active state) step is ALU work plus a load of the NFA
//! node record from the `STATIC` region, making pattern-heavy schema
//! validation genuinely CPU-intensive in the simulated workload, as the
//! paper's SV use case demands.

use crate::error::{XmlError, XmlErrorKind, XmlResult};
use aon_trace::{Addr, Probe, RegionSlot};

/// Region offset where compiled NFA records notionally live.
const NFA_STATIC_BASE: u32 = 0x10_0000;
/// Size of one NFA state record.
const STATE_SIZE: u32 = 12;

/// What a character-consuming NFA state matches.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Matcher {
    /// A single byte.
    Byte(u8),
    /// Any byte (`.`).
    Any,
    /// A class of byte ranges, possibly negated.
    Class { ranges: Vec<(u8, u8)>, negated: bool },
}

impl Matcher {
    fn matches(&self, b: u8) -> bool {
        match self {
            Matcher::Byte(want) => b == *want,
            Matcher::Any => true,
            Matcher::Class { ranges, negated } => {
                let inside = ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi);
                inside != *negated
            }
        }
    }

    /// Work per evaluation, in abstract ALU ops.
    fn cost(&self) -> u32 {
        match self {
            Matcher::Byte(_) | Matcher::Any => 1,
            Matcher::Class { ranges, .. } => 1 + ranges.len() as u32,
        }
    }
}

/// NFA states.
#[derive(Debug, Clone, PartialEq, Eq)]
enum State {
    /// Consume a byte matching `m`, go to `next`.
    Char { m: Matcher, next: u32 },
    /// Epsilon-split to both targets.
    Split { a: u32, b: u32 },
    /// Accepting state.
    Match,
}

/// A compiled `xs:pattern`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pattern {
    source: String,
    states: Vec<State>,
    start: u32,
}

impl Pattern {
    /// Compile a pattern (untraced; schema compilation is configuration
    /// work).
    pub fn compile(source: &str) -> XmlResult<Pattern> {
        Compiler::compile(source)
    }

    /// The pattern source.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Number of NFA states.
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Anchored match of `input`, tracing the simulation work on `p`.
    pub fn matches<P: Probe>(&self, input: &[u8], p: &mut P) -> bool {
        let mut current: Vec<u32> = Vec::with_capacity(self.states.len());
        let mut on_list = vec![false; self.states.len()];
        self.add_state(self.start, &mut current, &mut on_list, p);

        for &b in input {
            // One load for the input byte is the caller's concern (the bytes
            // usually come from a traced text read); the per-state work is
            // ours.
            let mut next: Vec<u32> = Vec::with_capacity(current.len());
            let mut next_on: Vec<bool> = vec![false; self.states.len()];
            for &s in &current {
                p.load(Addr::new(RegionSlot::STATIC, NFA_STATIC_BASE + s * STATE_SIZE), 8);
                if let State::Char { m, next: nx } = &self.states[s as usize] {
                    p.alu(m.cost());
                    if m.matches(b) {
                        self.add_state(*nx, &mut next, &mut next_on, p);
                    }
                }
            }
            current = next;
            on_list = next_on;
            if current.is_empty() {
                p.alu(1);
                return false;
            }
        }
        let _ = on_list;
        current.iter().any(|&s| matches!(self.states[s as usize], State::Match))
    }

    /// Unanchored search: does the pattern match any substring of `input`?
    /// Standard multi-start NFA simulation (a fresh start state joins the
    /// frontier at every position), linear time — the deep-packet-
    /// inspection primitive (the paper's §6 future work).
    ///
    /// Returns the end offset of the first (leftmost, shortest-end) match.
    pub fn find<P: Probe>(&self, input: &[u8], p: &mut P) -> Option<usize> {
        let mut current: Vec<u32> = Vec::with_capacity(self.states.len());
        let mut on_list = vec![false; self.states.len()];
        self.add_state(self.start, &mut current, &mut on_list, p);
        if current.iter().any(|&s| matches!(self.states[s as usize], State::Match)) {
            return Some(0);
        }
        for (i, &b) in input.iter().enumerate() {
            let mut next: Vec<u32> = Vec::with_capacity(current.len() + 1);
            let mut next_on: Vec<bool> = vec![false; self.states.len()];
            for &s in &current {
                p.load(Addr::new(RegionSlot::STATIC, NFA_STATIC_BASE + s * STATE_SIZE), 8);
                if let State::Char { m, next: nx } = &self.states[s as usize] {
                    p.alu(m.cost());
                    if m.matches(b) {
                        self.add_state(*nx, &mut next, &mut next_on, p);
                    }
                }
            }
            // Restart: a match may begin at the next position.
            self.add_state(self.start, &mut next, &mut next_on, p);
            if next.iter().any(|&s| matches!(self.states[s as usize], State::Match)) {
                p.alu(1);
                return Some(i + 1);
            }
            current = next;
        }
        None
    }

    /// Follow epsilon transitions, adding reachable states to the list.
    fn add_state<P: Probe>(&self, s: u32, list: &mut Vec<u32>, on: &mut [bool], p: &mut P) {
        if on[s as usize] {
            return;
        }
        on[s as usize] = true;
        p.alu(1);
        if let State::Split { a, b } = self.states[s as usize] {
            p.load(Addr::new(RegionSlot::STATIC, NFA_STATIC_BASE + s * STATE_SIZE), 8);
            self.add_state(a, list, on, p);
            self.add_state(b, list, on, p);
        } else {
            list.push(s);
        }
    }
}

/// Thompson-construction compiler.
struct Compiler<'s> {
    src: &'s [u8],
    pos: usize,
    states: Vec<State>,
}

/// A compiled fragment: entry state + dangling exits to patch.
#[derive(Debug, Clone)]
struct Frag {
    start: u32,
    /// (state index, which-leg) pairs pointing at a placeholder.
    outs: Vec<(u32, u8)>,
}

const PLACEHOLDER: u32 = u32::MAX;

impl<'s> Compiler<'s> {
    fn compile(source: &str) -> XmlResult<Pattern> {
        let mut c = Compiler { src: source.as_bytes(), pos: 0, states: Vec::new() };
        let frag = c.alternation()?;
        if c.pos != c.src.len() {
            return Err(c.err());
        }
        let m = c.push(State::Match);
        c.patch(&frag.outs, m);
        Ok(Pattern { source: source.to_string(), states: c.states, start: frag.start })
    }

    fn err(&self) -> XmlError {
        XmlError::at(XmlErrorKind::BadSchema, self.pos)
    }

    fn push(&mut self, s: State) -> u32 {
        self.states.push(s);
        (self.states.len() - 1) as u32
    }

    fn patch(&mut self, outs: &[(u32, u8)], target: u32) {
        for &(idx, leg) in outs {
            match &mut self.states[idx as usize] {
                State::Char { next, .. } => *next = target,
                State::Split { a, b } => {
                    if leg == 0 {
                        *a = target
                    } else {
                        *b = target
                    }
                }
                State::Match => unreachable!("match states have no exits"),
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    // alternation := concat ('|' concat)*
    fn alternation(&mut self) -> XmlResult<Frag> {
        let mut frag = self.concat()?;
        while self.peek() == Some(b'|') {
            self.pos += 1;
            let rhs = self.concat()?;
            let split = self.push(State::Split { a: frag.start, b: rhs.start });
            let mut outs = frag.outs;
            outs.extend(rhs.outs);
            frag = Frag { start: split, outs };
        }
        Ok(frag)
    }

    // concat := repeat*
    fn concat(&mut self) -> XmlResult<Frag> {
        let mut frag: Option<Frag> = None;
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            let next = self.repeat()?;
            frag = Some(match frag {
                None => next,
                Some(prev) => {
                    self.patch(&prev.outs, next.start);
                    Frag { start: prev.start, outs: next.outs }
                }
            });
        }
        // An empty branch matches the empty string: a lone split with both
        // legs dangling is overkill; synthesize an epsilon via Split.
        Ok(match frag {
            Some(f) => f,
            None => {
                let s = self.push(State::Split { a: PLACEHOLDER, b: PLACEHOLDER });
                Frag { start: s, outs: vec![(s, 0), (s, 1)] }
            }
        })
    }

    // repeat := atom ('*' | '+' | '?' | '{n}' | '{n,}' | '{n,m}')?
    fn repeat(&mut self) -> XmlResult<Frag> {
        let atom = self.atom()?;
        match self.peek() {
            Some(b'*') => {
                self.pos += 1;
                let split = self.push(State::Split { a: atom.start, b: PLACEHOLDER });
                self.patch(&atom.outs, split);
                Ok(Frag { start: split, outs: vec![(split, 1)] })
            }
            Some(b'+') => {
                self.pos += 1;
                let split = self.push(State::Split { a: atom.start, b: PLACEHOLDER });
                self.patch(&atom.outs, split);
                Ok(Frag { start: atom.start, outs: vec![(split, 1)] })
            }
            Some(b'?') => {
                self.pos += 1;
                let split = self.push(State::Split { a: atom.start, b: PLACEHOLDER });
                let mut outs = atom.outs;
                outs.push((split, 1));
                Ok(Frag { start: split, outs })
            }
            Some(b'{') => {
                let save = self.pos;
                self.pos += 1;
                let (min, max) = self.counted_bounds()?;
                let _ = save;
                self.expand_counted(atom, min, max)
            }
            _ => Ok(atom),
        }
    }

    fn counted_bounds(&mut self) -> XmlResult<(u32, Option<u32>)> {
        let min = self.number()?;
        match self.bump() {
            Some(b'}') => Ok((min, Some(min))),
            Some(b',') => {
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    Ok((min, None))
                } else {
                    let max = self.number()?;
                    if self.bump() != Some(b'}') {
                        return Err(self.err());
                    }
                    if let Some(m) = Some(max) {
                        if m < min {
                            return Err(self.err());
                        }
                    }
                    Ok((min, Some(max)))
                }
            }
            _ => Err(self.err()),
        }
    }

    fn number(&mut self) -> XmlResult<u32> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err());
        }
        std::str::from_utf8(&self.src[start..self.pos])
            .expect("span contains only ASCII digits, checked above")
            .parse()
            .map_err(|_| self.err())
    }

    /// Expand `atom{min,max}` by chaining clones of the compiled atom:
    /// `min` mandatory copies, then either a starred copy (`{n,}`) or
    /// `max - min` skippable copies (`{n,m}`).
    fn expand_counted(&mut self, first: Frag, min: u32, max: Option<u32>) -> XmlResult<Frag> {
        const LIMIT: u32 = 256;
        if min > LIMIT || max.is_some_and(|m| m > LIMIT) {
            return Err(self.err());
        }
        if max.is_some_and(|m| m < min) {
            return Err(self.err());
        }

        let mut used_first = false;
        let mut take_copy = |c: &mut Self| -> Frag {
            if used_first {
                c.clone_frag(&first)
            } else {
                used_first = true;
                first.clone()
            }
        };
        let append = |c: &mut Self, chain: Option<Frag>, next: Frag| -> Frag {
            match chain {
                None => next,
                Some(prev) => {
                    c.patch(&prev.outs, next.start);
                    Frag { start: prev.start, outs: next.outs }
                }
            }
        };

        let mut chain: Option<Frag> = None;
        for _ in 0..min {
            let copy = take_copy(self);
            chain = Some(append(self, chain, copy));
        }

        match max {
            None => {
                // `{n,}`: append `copy*`.
                let copy = take_copy(self);
                let star = self.push(State::Split { a: copy.start, b: PLACEHOLDER });
                self.patch(&copy.outs, star);
                let star_frag = Frag { start: star, outs: vec![(star, 1)] };
                Ok(append(self, chain, star_frag))
            }
            Some(m) if m == min => Ok(match chain {
                Some(f) => f,
                // `{0,0}`: matches only the empty string.
                None => {
                    let s = self.push(State::Split { a: PLACEHOLDER, b: PLACEHOLDER });
                    Frag { start: s, outs: vec![(s, 0), (s, 1)] }
                }
            }),
            Some(m) => {
                // `{n,m}`: append m-n skippable copies. Skipping any copy
                // skips all later ones, so every skip-leg dangles to the end.
                let mut skip_outs: Vec<(u32, u8)> = Vec::new();
                let mut opt_chain: Option<Frag> = None;
                for _ in 0..(m - min) {
                    let copy = take_copy(self);
                    let split = self.push(State::Split { a: copy.start, b: PLACEHOLDER });
                    skip_outs.push((split, 1));
                    let piece = Frag { start: split, outs: copy.outs };
                    opt_chain = Some(append(self, opt_chain, piece));
                }
                let mut opt = opt_chain.expect("m > min");
                opt.outs.extend(skip_outs);
                Ok(append(self, chain, opt))
            }
        }
    }

    /// Deep-copy a fragment's reachable states.
    fn clone_frag(&mut self, frag: &Frag) -> Frag {
        use std::collections::HashMap;
        let mut map: HashMap<u32, u32> = HashMap::new();
        let mut work = vec![frag.start];
        // First pass: allocate clones.
        while let Some(s) = work.pop() {
            if map.contains_key(&s) {
                continue;
            }
            let new = self.push(self.states[s as usize].clone());
            map.insert(s, new);
            match self.states[s as usize].clone() {
                State::Char { next, .. } => {
                    if next != PLACEHOLDER {
                        work.push(next);
                    }
                }
                State::Split { a, b } => {
                    if a != PLACEHOLDER {
                        work.push(a);
                    }
                    if b != PLACEHOLDER {
                        work.push(b);
                    }
                }
                State::Match => {}
            }
        }
        // Second pass: rewrite targets.
        for (&old, &new) in &map {
            let rewritten = match self.states[old as usize].clone() {
                State::Char { m, next } => State::Char {
                    m,
                    next: if next == PLACEHOLDER { PLACEHOLDER } else { map[&next] },
                },
                State::Split { a, b } => State::Split {
                    a: if a == PLACEHOLDER { PLACEHOLDER } else { map[&a] },
                    b: if b == PLACEHOLDER { PLACEHOLDER } else { map[&b] },
                },
                State::Match => State::Match,
            };
            self.states[new as usize] = rewritten;
        }
        Frag {
            start: map[&frag.start],
            outs: frag.outs.iter().map(|&(s, leg)| (map[&s], leg)).collect(),
        }
    }

    // atom := '(' alternation ')' | class | escape | '.' | literal
    fn atom(&mut self) -> XmlResult<Frag> {
        match self.peek() {
            Some(b'(') => {
                self.pos += 1;
                let f = self.alternation()?;
                if self.bump() != Some(b')') {
                    return Err(self.err());
                }
                Ok(f)
            }
            Some(b'[') => {
                self.pos += 1;
                let m = self.class()?;
                let s = self.push(State::Char { m, next: PLACEHOLDER });
                Ok(Frag { start: s, outs: vec![(s, 0)] })
            }
            Some(b'\\') => {
                self.pos += 1;
                let m = self.escape()?;
                let s = self.push(State::Char { m, next: PLACEHOLDER });
                Ok(Frag { start: s, outs: vec![(s, 0)] })
            }
            Some(b'.') => {
                self.pos += 1;
                let s = self.push(State::Char { m: Matcher::Any, next: PLACEHOLDER });
                Ok(Frag { start: s, outs: vec![(s, 0)] })
            }
            Some(b) if !matches!(b, b'*' | b'+' | b'?' | b'{' | b'}' | b')' | b']' | b'|') => {
                self.pos += 1;
                let s = self.push(State::Char { m: Matcher::Byte(b), next: PLACEHOLDER });
                Ok(Frag { start: s, outs: vec![(s, 0)] })
            }
            _ => Err(self.err()),
        }
    }

    fn escape(&mut self) -> XmlResult<Matcher> {
        let b = self.bump().ok_or_else(|| self.err())?;
        Ok(match b {
            b'd' => Matcher::Class { ranges: vec![(b'0', b'9')], negated: false },
            b'D' => Matcher::Class { ranges: vec![(b'0', b'9')], negated: true },
            b'w' => Matcher::Class {
                ranges: vec![(b'a', b'z'), (b'A', b'Z'), (b'0', b'9'), (b'_', b'_')],
                negated: false,
            },
            b'W' => Matcher::Class {
                ranges: vec![(b'a', b'z'), (b'A', b'Z'), (b'0', b'9'), (b'_', b'_')],
                negated: true,
            },
            b's' => Matcher::Class {
                ranges: vec![(b' ', b' '), (b'\t', b'\t'), (b'\r', b'\r'), (b'\n', b'\n')],
                negated: false,
            },
            b'S' => Matcher::Class {
                ranges: vec![(b' ', b' '), (b'\t', b'\t'), (b'\r', b'\r'), (b'\n', b'\n')],
                negated: true,
            },
            b'n' => Matcher::Byte(b'\n'),
            b't' => Matcher::Byte(b'\t'),
            b'r' => Matcher::Byte(b'\r'),
            // Escaped metacharacters and anything else: literal.
            other => Matcher::Byte(other),
        })
    }

    fn class(&mut self) -> XmlResult<Matcher> {
        let negated = if self.peek() == Some(b'^') {
            self.pos += 1;
            true
        } else {
            false
        };
        let mut ranges: Vec<(u8, u8)> = Vec::new();
        loop {
            let b = self.bump().ok_or_else(|| self.err())?;
            if b == b']' {
                if ranges.is_empty() {
                    return Err(self.err());
                }
                return Ok(Matcher::Class { ranges, negated });
            }
            let lo = if b == b'\\' {
                match self.escape()? {
                    Matcher::Byte(x) => x,
                    Matcher::Class { ranges: sub, negated: false } => {
                        // \d / \w / \s inside a class: splice the ranges.
                        ranges.extend(sub);
                        continue;
                    }
                    _ => return Err(self.err()),
                }
            } else {
                b
            };
            if self.peek() == Some(b'-') && self.src.get(self.pos + 1) != Some(&b']') {
                self.pos += 1;
                let hib = self.bump().ok_or_else(|| self.err())?;
                let hi = if hib == b'\\' {
                    match self.escape()? {
                        Matcher::Byte(x) => x,
                        _ => return Err(self.err()),
                    }
                } else {
                    hib
                };
                if hi < lo {
                    return Err(self.err());
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::NullProbe;

    fn m(pat: &str, input: &str) -> bool {
        Pattern::compile(pat).unwrap().matches(input.as_bytes(), &mut NullProbe)
    }

    #[test]
    fn literals() {
        assert!(m("abc", "abc"));
        assert!(!m("abc", "ab"));
        assert!(!m("abc", "abcd")); // anchored
        assert!(!m("abc", "xabc"));
    }

    #[test]
    fn dot_and_classes() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a!c"));
        assert!(m("[a-z]+", "hello"));
        assert!(!m("[a-z]+", "Hello"));
        assert!(m("[^0-9]+", "abc"));
        assert!(!m("[^0-9]+", "a1c"));
        assert!(m("[-+]?[0-9]+", "+42"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"\d+", "123"));
        assert!(!m(r"\d+", "12a"));
        assert!(m(r"\w+", "ab_1"));
        assert!(m(r"a\.b", "a.b"));
        assert!(!m(r"a\.b", "axb"));
        assert!(m(r"[\d]+-[\w]+", "12-ab"));
    }

    #[test]
    fn quantifiers() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
    }

    #[test]
    fn counted_quantifiers() {
        assert!(m("a{3}", "aaa"));
        assert!(!m("a{3}", "aa"));
        assert!(!m("a{3}", "aaaa"));
        assert!(m("a{2,4}", "aa"));
        assert!(m("a{2,4}", "aaaa"));
        assert!(!m("a{2,4}", "aaaaa"));
        assert!(m("a{2,}", "aaaaaa"));
        assert!(!m("a{2,}", "a"));
        assert!(m("[A-Z]{2}-[0-9]+", "AB-123"));
        assert!(!m("[A-Z]{2}-[0-9]+", "A-123"));
    }

    #[test]
    fn zero_min_counted() {
        assert!(m("a{0,2}b", "b"));
        assert!(m("a{0,2}b", "ab"));
        assert!(m("a{0,2}b", "aab"));
        assert!(!m("a{0,2}b", "aaab"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "cat"));
        assert!(m("cat|dog", "dog"));
        assert!(!m("cat|dog", "cow"));
        assert!(m("(ab)+", "ababab"));
        assert!(!m("(ab)+", "aba"));
        assert!(m("a(b|c)d", "abd"));
        assert!(m("a(b|c)d", "acd"));
        assert!(!m("a(b|c)d", "aed"));
    }

    #[test]
    fn empty_alternative() {
        assert!(m("a(b|)c", "abc"));
        assert!(m("a(b|)c", "ac"));
    }

    #[test]
    fn realistic_xsd_patterns() {
        // Date.
        let date = r"[0-9]{4}-[0-9]{2}-[0-9]{2}";
        assert!(m(date, "2007-03-14"));
        assert!(!m(date, "2007-3-14"));
        // SKU.
        assert!(m(r"[A-Z]{3}\d{4}", "ABC1234"));
        // US currency-ish.
        assert!(m(r"\d+(\.\d{2})?", "100"));
        assert!(m(r"\d+(\.\d{2})?", "100.99"));
        assert!(!m(r"\d+(\.\d{2})?", "100.9"));
    }

    #[test]
    fn compile_errors() {
        for bad in ["(", "a)", "[", "[]", "a{", "a{2", "a{3,2}", "[z-a]", "*a"] {
            assert!(Pattern::compile(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn matching_emits_trace_work() {
        use aon_trace::Tracer;
        let pat = Pattern::compile(r"[A-Z]{2}-\d+").unwrap();
        let mut t = Tracer::new();
        assert!(pat.matches(b"AB-12345", &mut t));
        let s = t.finish().stats();
        assert!(s.ops > 20, "NFA simulation must cost work, got {}", s.ops);
        assert!(s.loads > 5);
    }

    #[test]
    fn find_locates_substrings() {
        let pat = Pattern::compile("attack[0-9]+").unwrap();
        let mut p = NullProbe;
        assert!(pat.find(b"GET /attack99/path", &mut p).is_some());
        assert!(pat.find(b"attack7", &mut p).is_some());
        assert!(pat.find(b"no threats here", &mut p).is_none());
        assert!(pat.find(b"attack", &mut p).is_none(), "needs the digits");
        assert!(pat.find(b"", &mut p).is_none());
    }

    #[test]
    fn find_returns_end_of_first_match() {
        let pat = Pattern::compile("ab").unwrap();
        assert_eq!(pat.find(b"xxabyyab", &mut NullProbe), Some(4));
        assert_eq!(pat.find(b"ab", &mut NullProbe), Some(2));
    }

    #[test]
    fn find_empty_pattern_matches_immediately() {
        let pat = Pattern::compile("a*").unwrap();
        assert_eq!(pat.find(b"zzz", &mut NullProbe), Some(0));
    }

    #[test]
    fn find_agrees_with_anchored_dotstar() {
        // find(pat) == matches(".*pat.*") on a set of inputs.
        let inner = "[A-Z]{2}[0-9]";
        let find_pat = Pattern::compile(inner).unwrap();
        let anchored = Pattern::compile(&format!(".*({inner}).*")).unwrap();
        for input in [&b"xxAB1yy"[..], b"AB1", b"ab1", b"A1B", b"zzzAB", b""] {
            assert_eq!(
                find_pat.find(input, &mut NullProbe).is_some(),
                anchored.matches(input, &mut NullProbe),
                "disagreement on {:?}",
                String::from_utf8_lossy(input)
            );
        }
    }

    #[test]
    fn no_pathological_blowup() {
        // (a|a)* style patterns are linear with Thompson simulation.
        let pat = Pattern::compile("(a|a)*b").unwrap();
        let input = vec![b'a'; 200];
        assert!(!pat.matches(&input, &mut NullProbe));
    }
}
