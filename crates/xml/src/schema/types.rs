//! Compiled schema data structures.

/// `maxOccurs="unbounded"`.
pub const MAX_UNBOUNDED: u32 = u32::MAX;

/// Index of a type definition in [`Schema::types`](super::Schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TypeId(pub u32);

/// Reference to a type: either a built-in or a compiled definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeRef {
    /// One of the built-in simple types (`xs:string`, …).
    Builtin(BuiltinType),
    /// A compiled `xs:simpleType` or `xs:complexType`.
    Def(TypeId),
}

/// Built-in simple types supported by the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuiltinType {
    /// `xs:string` — any character data.
    String,
    /// `xs:token` — string with collapsed whitespace semantics (we validate
    /// the value space only).
    Token,
    /// `xs:integer`.
    Integer,
    /// `xs:nonNegativeInteger`.
    NonNegativeInteger,
    /// `xs:positiveInteger`.
    PositiveInteger,
    /// `xs:decimal`.
    Decimal,
    /// `xs:boolean` — `true|false|1|0`.
    Boolean,
    /// `xs:date` — `CCYY-MM-DD`.
    Date,
    /// `xs:anyURI` — loosely validated.
    AnyUri,
}

impl BuiltinType {
    /// Resolve a QName's local part (`xs:` prefix already stripped).
    pub fn by_local_name(name: &[u8]) -> Option<BuiltinType> {
        Some(match name {
            b"string" => BuiltinType::String,
            b"token" | b"normalizedString" => BuiltinType::Token,
            b"integer" | b"int" | b"long" | b"short" => BuiltinType::Integer,
            b"nonNegativeInteger" | b"unsignedInt" | b"unsignedLong" => {
                BuiltinType::NonNegativeInteger
            }
            b"positiveInteger" => BuiltinType::PositiveInteger,
            b"decimal" | b"double" | b"float" => BuiltinType::Decimal,
            b"boolean" => BuiltinType::Boolean,
            b"date" => BuiltinType::Date,
            b"anyURI" => BuiltinType::AnyUri,
            _ => return None,
        })
    }
}

/// Restriction facets of a simple type.
#[derive(Debug, Clone, Default)]
pub struct Facets {
    /// `xs:enumeration` values (value must equal one when non-empty).
    pub enumeration: Vec<Vec<u8>>,
    /// `xs:pattern` (regex-lite, see [`super::pattern`]).
    pub pattern: Option<super::pattern::Pattern>,
    /// `xs:length`.
    pub length: Option<u32>,
    /// `xs:minLength`.
    pub min_length: Option<u32>,
    /// `xs:maxLength`.
    pub max_length: Option<u32>,
    /// `xs:minInclusive` (numeric types).
    pub min_inclusive: Option<i64>,
    /// `xs:maxInclusive` (numeric types).
    pub max_inclusive: Option<i64>,
}

/// A compiled `xs:simpleType` restriction.
#[derive(Debug, Clone)]
pub struct SimpleType {
    /// The base built-in type.
    pub base: BuiltinType,
    /// Restriction facets.
    pub facets: Facets,
}

/// An attribute declaration on a complex type.
#[derive(Debug, Clone)]
pub struct AttrDecl {
    /// Attribute name.
    pub name: Vec<u8>,
    /// Value type (must be simple).
    pub ty: TypeRef,
    /// `use="required"`.
    pub required: bool,
}

/// A content-model particle.
#[derive(Debug, Clone)]
pub enum Particle {
    /// A child element slot.
    Element {
        /// Element name.
        name: Vec<u8>,
        /// The element's type.
        ty: TypeRef,
        /// `minOccurs`.
        min: u32,
        /// `maxOccurs` ([`MAX_UNBOUNDED`] for `unbounded`).
        max: u32,
    },
    /// Ordered group.
    Sequence {
        /// Group members, in order.
        items: Vec<Particle>,
        /// `minOccurs` of the group.
        min: u32,
        /// `maxOccurs` of the group.
        max: u32,
    },
    /// One-of group.
    Choice {
        /// Alternatives.
        items: Vec<Particle>,
        /// `minOccurs` of the group.
        min: u32,
        /// `maxOccurs` of the group.
        max: u32,
    },
    /// Unordered group (each member at most once, required members exactly
    /// once) — `xs:all`.
    All {
        /// Members.
        items: Vec<Particle>,
    },
}

impl Particle {
    /// Number of particle records (self + descendants), for STATIC-region
    /// trace accounting.
    pub fn record_count(&self) -> u32 {
        match self {
            Particle::Element { .. } => 1,
            Particle::Sequence { items, .. }
            | Particle::Choice { items, .. }
            | Particle::All { items } => 1 + items.iter().map(Particle::record_count).sum::<u32>(),
        }
    }
}

/// Content of a complex type.
#[derive(Debug, Clone)]
pub enum ContentModel {
    /// No children, no text.
    Empty,
    /// Text-only content of a simple type (`xs:simpleContent` or an element
    /// with a simple type).
    Text(TypeRef),
    /// Element-only content.
    Children(Particle),
}

/// A compiled `xs:complexType`.
#[derive(Debug, Clone)]
pub struct ComplexType {
    /// Attribute declarations.
    pub attrs: Vec<AttrDecl>,
    /// The content model.
    pub content: ContentModel,
}

/// A compiled type definition.
#[derive(Debug, Clone)]
pub enum TypeDef {
    /// Simple type.
    Simple(SimpleType),
    /// Complex type.
    Complex(ComplexType),
}

/// A global element declaration.
#[derive(Debug, Clone)]
pub struct ElemDecl {
    /// Element name.
    pub name: Vec<u8>,
    /// The element's type.
    pub ty: TypeRef,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_lookup() {
        assert_eq!(BuiltinType::by_local_name(b"string"), Some(BuiltinType::String));
        assert_eq!(
            BuiltinType::by_local_name(b"positiveInteger"),
            Some(BuiltinType::PositiveInteger)
        );
        assert_eq!(BuiltinType::by_local_name(b"nosuch"), None);
    }

    #[test]
    fn particle_record_count() {
        let p = Particle::Sequence {
            items: vec![
                Particle::Element {
                    name: b"a".to_vec(),
                    ty: TypeRef::Builtin(BuiltinType::String),
                    min: 1,
                    max: 1,
                },
                Particle::Choice {
                    items: vec![Particle::Element {
                        name: b"b".to_vec(),
                        ty: TypeRef::Builtin(BuiltinType::String),
                        min: 1,
                        max: 1,
                    }],
                    min: 0,
                    max: 1,
                },
            ],
            min: 1,
            max: 1,
        };
        assert_eq!(p.record_count(), 4);
    }
}
