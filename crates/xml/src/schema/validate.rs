//! Schema validation engine.
//!
//! Walks the message DOM against the compiled schema. Content models are
//! matched with a backtracking particle matcher (XSD's Unique Particle
//! Attribution rule means real schemas are deterministic and the matcher
//! rarely backtracks; the code still handles the general case correctly).
//!
//! Tracing: every compiled-record consulted emits a STATIC load (warm), DOM
//! traversal and text reads go through the traced `Document` accessors
//! (cold, per-message), and value checks delegate to [`super::value`].

use super::types::{
    AttrDecl, ComplexType, ContentModel, ElemDecl, Particle, SimpleType, TypeDef, TypeRef,
    MAX_UNBOUNDED,
};
use super::value;
use super::Schema;
use crate::dom::{Document, NodeId, NodeKind};
use crate::error::XmlResult;
use aon_trace::{br, Addr, Probe, RegionSlot};

/// Region offset where compiled schema records notionally live.
const SCHEMA_STATIC_BASE: u32 = 0x20_0000;
/// Size of one compiled schema record.
const RECORD_SIZE: u32 = 24;

#[inline]
fn touch_record<P: Probe>(idx: u32, p: &mut P) {
    p.load(Addr::new(RegionSlot::STATIC, SCHEMA_STATIC_BASE + (idx % 4096) * RECORD_SIZE), 8);
    p.alu(1);
}

/// Why a document failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// Element has no matching declaration.
    UnknownElement,
    /// Children do not match the content model.
    ContentModel,
    /// Element with `Empty`/`Children` content has text.
    UnexpectedText,
    /// A simple value failed its type or facet checks.
    BadValue,
    /// A required attribute is missing.
    MissingAttribute,
    /// An undeclared attribute is present.
    UnknownAttribute,
    /// An attribute value failed its type check.
    BadAttributeValue,
}

/// One validation failure.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What failed.
    pub kind: ViolationKind,
    /// The offending node.
    pub node: NodeId,
    /// Element or attribute name involved, for diagnostics.
    pub name: Vec<u8>,
}

/// The validation outcome.
#[derive(Debug, Clone)]
pub enum Validity {
    /// Document conforms to the schema.
    Valid,
    /// Document does not conform; all collected violations.
    Invalid(Vec<Violation>),
}

impl Validity {
    /// True if valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, Validity::Valid)
    }

    /// The violations (empty when valid).
    pub fn violations(&self) -> &[Violation] {
        match self {
            Validity::Valid => &[],
            Validity::Invalid(v) => v,
        }
    }
}

struct Validator<'s, 'd, P: Probe> {
    schema: &'s Schema,
    doc: &'d Document,
    violations: Vec<Violation>,
    probe: &'s mut P,
    record_cursor: u32,
}

/// Validate `doc` against `schema`, starting at the document root.
pub fn validate_document<P: Probe>(
    schema: &Schema,
    doc: &Document,
    p: &mut P,
) -> XmlResult<Validity> {
    let root = doc.root()?;
    Ok(validate_subtree(schema, doc, root, p))
}

/// Validate the subtree rooted at `node` (it must match a global element
/// declaration). Used when the validated payload sits inside an envelope —
/// e.g. a SOAP body member.
pub fn validate_subtree<P: Probe>(
    schema: &Schema,
    doc: &Document,
    node: crate::dom::NodeId,
    p: &mut P,
) -> Validity {
    let mut v = Validator { schema, doc, violations: Vec::new(), probe: p, record_cursor: 0 };
    v.validate_root(node);
    if v.violations.is_empty() {
        Validity::Valid
    } else {
        Validity::Invalid(v.violations)
    }
}

impl<P: Probe> Validator<'_, '_, P> {
    fn touch(&mut self) {
        touch_record(self.record_cursor, self.probe);
        self.record_cursor += 1;
    }

    fn violate(&mut self, kind: ViolationKind, node: NodeId, name: &[u8]) {
        self.violations.push(Violation { kind, node, name: name.to_vec() });
    }

    fn element_name(&mut self, node: NodeId) -> Option<Vec<u8>> {
        match self.doc.kind_t(node, self.probe) {
            NodeKind::Element(nm) => Some(self.doc.name_bytes(nm).to_vec()),
            _ => None,
        }
    }

    fn validate_root(&mut self, root: NodeId) {
        let Some(name) = self.element_name(root) else {
            self.violate(ViolationKind::UnknownElement, root, b"");
            return;
        };
        // Linear scan over global declarations (schemas are small; real
        // engines hash — either way it's warm STATIC data).
        let decl: Option<ElemDecl> = {
            let mut found = None;
            for (i, d) in self.schema.elements.iter().enumerate() {
                touch_record(i as u32, self.probe);
                self.probe.alu(2);
                if br!(self.probe, d.name == name) {
                    found = Some(d.clone());
                    break;
                }
            }
            found
        };
        match decl {
            Some(d) => self.validate_element(root, &name, d.ty),
            None => self.violate(ViolationKind::UnknownElement, root, &name),
        }
    }

    fn validate_element(&mut self, node: NodeId, name: &[u8], ty: TypeRef) {
        self.touch();
        match ty {
            TypeRef::Builtin(bt) => {
                // Element with a built-in simple type: text-only content.
                self.check_no_element_children(node, name);
                let text = self.doc.text_of_t(node, self.probe);
                if !value::check_builtin(bt, &text, self.probe) {
                    self.violate(ViolationKind::BadValue, node, name);
                }
                self.check_attrs(node, name, &[]);
            }
            TypeRef::Def(id) => match &self.schema.types[id.0 as usize] {
                TypeDef::Simple(st) => {
                    let st = st.clone();
                    self.check_no_element_children(node, name);
                    let text = self.doc.text_of_t(node, self.probe);
                    self.check_simple_value(&st, &text, node, name);
                    self.check_attrs(node, name, &[]);
                }
                TypeDef::Complex(ct) => {
                    let ct = ct.clone();
                    self.validate_complex(node, name, &ct);
                }
            },
        }
    }

    fn check_simple_value(&mut self, st: &SimpleType, text: &[u8], node: NodeId, name: &[u8]) {
        let ok = value::check_builtin(st.base, text, self.probe)
            && value::check_facets(&st.facets, text, self.probe);
        if !br!(self.probe, ok) {
            self.violate(ViolationKind::BadValue, node, name);
        }
    }

    fn check_no_element_children(&mut self, node: NodeId, name: &[u8]) {
        let mut cur = self.doc.first_child_t(node, self.probe);
        while let Some(c) = cur {
            if let NodeKind::Element(_) = self.doc.kind_t(c, self.probe) {
                self.violate(ViolationKind::ContentModel, c, name);
                return;
            }
            cur = self.doc.next_sibling_t(c, self.probe);
        }
    }

    fn validate_complex(&mut self, node: NodeId, name: &[u8], ct: &ComplexType) {
        self.check_attrs(node, name, &ct.attrs);
        match &ct.content {
            ContentModel::Empty => {
                if br!(self.probe, self.doc.first_child_t(node, self.probe).is_some()) {
                    // Whitespace-only text was dropped at parse time, so any
                    // child is a real violation.
                    self.violate(ViolationKind::UnexpectedText, node, name);
                }
            }
            ContentModel::Text(ty) => {
                self.check_no_element_children(node, name);
                let text = self.doc.text_of_t(node, self.probe);
                match ty {
                    TypeRef::Builtin(bt) => {
                        if !value::check_builtin(*bt, &text, self.probe) {
                            self.violate(ViolationKind::BadValue, node, name);
                        }
                    }
                    TypeRef::Def(id) => {
                        if let TypeDef::Simple(st) = &self.schema.types[id.0 as usize] {
                            let st = st.clone();
                            self.check_simple_value(&st, &text, node, name);
                        }
                    }
                }
            }
            ContentModel::Children(particle) => {
                // Gather element children; text between them is a violation.
                let mut children: Vec<(NodeId, Vec<u8>)> = Vec::new();
                let mut cur = self.doc.first_child_t(node, self.probe);
                while let Some(c) = cur {
                    match self.doc.kind_t(c, self.probe) {
                        NodeKind::Element(nm) => {
                            children.push((c, self.doc.name_bytes(nm).to_vec()))
                        }
                        NodeKind::Text(_) => {
                            let text = self.doc.text_bytes_t(c, self.probe);
                            if !value::trim(&text).is_empty() {
                                self.violate(ViolationKind::UnexpectedText, c, name);
                            }
                        }
                        _ => {}
                    }
                    cur = self.doc.next_sibling_t(c, self.probe);
                }
                let names: Vec<&[u8]> = children.iter().map(|(_, n)| n.as_slice()).collect();
                match match_particle(particle, &names, 0, self.probe, &mut self.record_cursor) {
                    Some(consumed) if consumed == names.len() => {
                        // Content model ok; now recurse into each child with
                        // its matched element declaration.
                        for (child, child_name) in &children {
                            match find_child_decl(particle, child_name) {
                                Some(ty) => self.validate_element(*child, child_name, ty),
                                None => {
                                    self.violate(ViolationKind::UnknownElement, *child, child_name)
                                }
                            }
                        }
                    }
                    _ => self.violate(ViolationKind::ContentModel, node, name),
                }
            }
        }
    }

    fn check_attrs(&mut self, node: NodeId, _name: &[u8], decls: &[AttrDecl]) {
        // Present attributes must be declared and valid.
        let recs: Vec<_> = self.doc.attrs_t(node, self.probe).to_vec();
        for rec in &recs {
            let aname = self.doc.name_bytes(rec.name).to_vec();
            // Namespace declarations are not schema-validated.
            if aname.starts_with(b"xmlns") {
                continue;
            }
            self.touch();
            let decl = decls.iter().find(|d| d.name == aname).cloned();
            match decl {
                None => self.violate(ViolationKind::UnknownAttribute, node, &aname),
                Some(d) => {
                    let val = self.doc.str_bytes(rec.value).to_vec();
                    // Trace the value read.
                    let words = (val.len() as u32).div_ceil(8);
                    for w in 0..words {
                        self.probe.load(self.doc.str_addr(rec.value.off + w * 8), 8);
                    }
                    let ok = match d.ty {
                        TypeRef::Builtin(bt) => value::check_builtin(bt, &val, self.probe),
                        TypeRef::Def(id) => match &self.schema.types[id.0 as usize] {
                            TypeDef::Simple(st) => {
                                let st = st.clone();
                                value::check_builtin(st.base, &val, self.probe)
                                    && value::check_facets(&st.facets, &val, self.probe)
                            }
                            TypeDef::Complex(_) => false,
                        },
                    };
                    if !br!(self.probe, ok) {
                        self.violate(ViolationKind::BadAttributeValue, node, &aname);
                    }
                }
            }
        }
        // Required attributes must be present.
        for d in decls {
            self.touch();
            if d.required {
                let present = recs.iter().any(|r| self.doc.name_bytes(r.name) == d.name.as_slice());
                self.probe.alu(recs.len().max(1) as u32);
                if !br!(self.probe, present) {
                    self.violate(ViolationKind::MissingAttribute, node, &d.name);
                }
            }
        }
    }
}

/// Try to match `particle` against `names[pos..]`; returns the new position
/// on success. Backtracking matcher over the (short) child list.
///
/// `pub(super)` so [`super::automaton`] can fall back to the exact same
/// greedy algorithm (with `NullProbe`) for content models it cannot prove
/// DFA-equivalent — fallback then cannot change a verdict by construction.
pub(super) fn match_particle<P: Probe>(
    particle: &Particle,
    names: &[&[u8]],
    pos: usize,
    p: &mut P,
    cursor: &mut u32,
) -> Option<usize> {
    touch_record(*cursor, p);
    *cursor += 1;
    match particle {
        Particle::Element { name, min, max, .. } => {
            let mut count = 0u32;
            let mut i = pos;
            while i < names.len() && count < *max {
                p.alu(2);
                let matches = names[i] == name.as_slice();
                p.branch(aon_trace::code::site_from(file!(), line!(), column!()), matches);
                if !matches {
                    break;
                }
                count += 1;
                i += 1;
            }
            if count >= *min {
                Some(i)
            } else {
                None
            }
        }
        Particle::Sequence { items, min, max } => {
            match_group(names, pos, *min, *max, p, cursor, |names, pos, p, cursor| {
                let mut i = pos;
                for item in items {
                    i = match_particle(item, names, i, p, cursor)?;
                }
                Some(i)
            })
        }
        Particle::Choice { items, min, max } => {
            match_group(names, pos, *min, *max, p, cursor, |names, pos, p, cursor| {
                for item in items {
                    if let Some(next) = match_particle(item, names, pos, p, cursor) {
                        return Some(next);
                    }
                }
                None
            })
        }
        Particle::All { items } => {
            // Each member once (order-free); optional members may be absent.
            let mut used = vec![false; items.len()];
            let mut i = pos;
            'next_child: while i < names.len() {
                for (k, item) in items.iter().enumerate() {
                    if used[k] {
                        continue;
                    }
                    if let Particle::Element { name, .. } = item {
                        p.alu(2);
                        if names[i] == name.as_slice() {
                            used[k] = true;
                            i += 1;
                            continue 'next_child;
                        }
                    }
                }
                break;
            }
            // Required members must all be used.
            for (k, item) in items.iter().enumerate() {
                if let Particle::Element { min, .. } = item {
                    p.alu(1);
                    if *min > 0 && !used[k] {
                        return None;
                    }
                }
            }
            Some(i)
        }
    }
}

/// Apply a group body `min..=max` times (greedy).
fn match_group<P: Probe>(
    names: &[&[u8]],
    pos: usize,
    min: u32,
    max: u32,
    p: &mut P,
    cursor: &mut u32,
    body: impl Fn(&[&[u8]], usize, &mut P, &mut u32) -> Option<usize>,
) -> Option<usize> {
    let mut count = 0u32;
    let mut i = pos;
    while count < max {
        match body(names, i, p, cursor) {
            Some(next) => {
                // Zero-width repetition guard.
                if next == i && max == MAX_UNBOUNDED {
                    break;
                }
                i = next;
                count += 1;
            }
            None => break,
        }
    }
    if count >= min {
        Some(i)
    } else {
        None
    }
}

/// Find the declared type of a child element anywhere in the particle tree.
pub(super) fn find_child_decl(particle: &Particle, name: &[u8]) -> Option<TypeRef> {
    match particle {
        Particle::Element { name: n, ty, .. } => {
            if n.as_slice() == name {
                Some(*ty)
            } else {
                None
            }
        }
        Particle::Sequence { items, .. }
        | Particle::Choice { items, .. }
        | Particle::All { items } => items.iter().find_map(|i| find_child_decl(i, name)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::types::BuiltinType;
    use aon_trace::NullProbe;

    fn elem(name: &str, min: u32, max: u32) -> Particle {
        Particle::Element {
            name: name.as_bytes().to_vec(),
            ty: TypeRef::Builtin(BuiltinType::String),
            min,
            max,
        }
    }

    fn names(list: &[&str]) -> Vec<Vec<u8>> {
        list.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn run(p: &Particle, children: &[&str]) -> bool {
        let owned = names(children);
        let refs: Vec<&[u8]> = owned.iter().map(|v| v.as_slice()).collect();
        let mut cursor = 0;
        match_particle(p, &refs, 0, &mut NullProbe, &mut cursor) == Some(refs.len())
    }

    #[test]
    fn element_occurs() {
        let p = elem("a", 1, 3);
        assert!(!run(&p, &[]));
        assert!(run(&p, &["a"]));
        assert!(run(&p, &["a", "a", "a"]));
        assert!(!run(&p, &["a", "a", "a", "a"]));
        assert!(!run(&p, &["b"]));
    }

    #[test]
    fn sequence_order() {
        let p =
            Particle::Sequence { items: vec![elem("a", 1, 1), elem("b", 1, 1)], min: 1, max: 1 };
        assert!(run(&p, &["a", "b"]));
        assert!(!run(&p, &["b", "a"]));
        assert!(!run(&p, &["a"]));
    }

    #[test]
    fn optional_in_sequence() {
        let p = Particle::Sequence {
            items: vec![elem("a", 1, 1), elem("opt", 0, 1), elem("b", 1, 1)],
            min: 1,
            max: 1,
        };
        assert!(run(&p, &["a", "b"]));
        assert!(run(&p, &["a", "opt", "b"]));
        assert!(!run(&p, &["a", "opt", "opt", "b"]));
    }

    #[test]
    fn repeated_group() {
        let p = Particle::Sequence {
            items: vec![elem("k", 1, 1), elem("v", 1, 1)],
            min: 0,
            max: MAX_UNBOUNDED,
        };
        assert!(run(&p, &[]));
        assert!(run(&p, &["k", "v"]));
        assert!(run(&p, &["k", "v", "k", "v"]));
        assert!(!run(&p, &["k", "k"]));
    }

    #[test]
    fn choice_picks_matching_branch() {
        let p = Particle::Choice { items: vec![elem("a", 1, 1), elem("b", 1, 1)], min: 1, max: 1 };
        assert!(run(&p, &["a"]));
        assert!(run(&p, &["b"]));
        assert!(!run(&p, &["c"]));
        assert!(!run(&p, &["a", "b"]));
    }

    #[test]
    fn unbounded_choice_mixes() {
        let p = Particle::Choice {
            items: vec![elem("a", 1, 1), elem("b", 1, 1)],
            min: 0,
            max: MAX_UNBOUNDED,
        };
        assert!(run(&p, &["a", "b", "a", "a", "b"]));
    }

    #[test]
    fn find_decl_descends() {
        let p = Particle::Sequence {
            items: vec![
                elem("a", 1, 1),
                Particle::Choice { items: vec![elem("x", 1, 1)], min: 1, max: 1 },
            ],
            min: 1,
            max: 1,
        };
        assert!(find_child_decl(&p, b"x").is_some());
        assert!(find_child_decl(&p, b"zzz").is_none());
    }
}
