//! Lexical validation of simple-type values.
//!
//! Character-by-character validation of built-in type lexical spaces plus
//! facet checking — exactly the string-crunching work the paper identifies
//! as the core of XML content processing. All checks are traced as per-byte
//! ALU work; enumeration compares and patterns add loads of the schema's
//! STATIC-resident facet data.

use super::types::{BuiltinType, Facets};
use aon_trace::{br, site, Probe};

/// Validate `value` against a built-in type's lexical space.
pub fn check_builtin<P: Probe>(ty: BuiltinType, value: &[u8], p: &mut P) -> bool {
    match ty {
        BuiltinType::String | BuiltinType::Token | BuiltinType::AnyUri => {
            // Any byte sequence (URI checked loosely: no spaces).
            if ty == BuiltinType::AnyUri {
                let mut ok = true;
                for &b in value {
                    p.alu(1);
                    if br!(p, b == b' ') {
                        ok = false;
                        break;
                    }
                }
                ok
            } else {
                p.alu(1);
                true
            }
        }
        BuiltinType::Integer => parse_int(value, p).is_some(),
        BuiltinType::NonNegativeInteger => parse_int(value, p).is_some_and(|v| v >= 0),
        BuiltinType::PositiveInteger => parse_int(value, p).is_some_and(|v| v > 0),
        BuiltinType::Decimal => check_decimal(value, p),
        BuiltinType::Boolean => {
            p.alu(2);
            matches!(trim(value), b"true" | b"false" | b"1" | b"0")
        }
        BuiltinType::Date => check_date(value, p),
    }
}

/// Validate facets. `numeric_value` is pre-parsed when the base is numeric.
pub fn check_facets<P: Probe>(facets: &Facets, value: &[u8], p: &mut P) -> bool {
    let v = trim(value);
    if let Some(len) = facets.length {
        p.alu(1);
        if br!(p, v.len() as u32 != len) {
            return false;
        }
    }
    if let Some(min) = facets.min_length {
        p.alu(1);
        if br!(p, (v.len() as u32) < min) {
            return false;
        }
    }
    if let Some(max) = facets.max_length {
        p.alu(1);
        if br!(p, v.len() as u32 > max) {
            return false;
        }
    }
    if !facets.enumeration.is_empty() {
        // Compare against each enum literal until a hit (schema literals
        // live in STATIC and are warm).
        let mut hit = false;
        for lit in &facets.enumeration {
            p.alu((v.len().min(lit.len()).max(1) as u32).div_ceil(4) + 1);
            if br!(p, lit.as_slice() == v) {
                hit = true;
                break;
            }
        }
        if !hit {
            return false;
        }
    }
    if let Some(pat) = &facets.pattern {
        if !br!(p, pat.matches(v, p)) {
            return false;
        }
    }
    if facets.min_inclusive.is_some() || facets.max_inclusive.is_some() {
        let Some(n) = parse_int(v, p) else {
            return false;
        };
        if let Some(min) = facets.min_inclusive {
            p.alu(1);
            if br!(p, n < min) {
                return false;
            }
        }
        if let Some(max) = facets.max_inclusive {
            p.alu(1);
            if br!(p, n > max) {
                return false;
            }
        }
    }
    true
}

/// Strip XML whitespace from both ends (the `collapse` whitespace facet of
/// most built-ins, simplified).
pub fn trim(value: &[u8]) -> &[u8] {
    let mut start = 0;
    let mut end = value.len();
    while start < end && value[start].is_ascii_whitespace() {
        start += 1;
    }
    while end > start && value[end - 1].is_ascii_whitespace() {
        end -= 1;
    }
    &value[start..end]
}

/// Traced integer parse: sign + per-digit multiply-accumulate.
pub fn parse_int<P: Probe>(value: &[u8], p: &mut P) -> Option<i64> {
    let v = trim(value);
    p.alu(2);
    if v.is_empty() {
        p.branch(site!(), false);
        return None;
    }
    let (neg, digits) = match v[0] {
        b'-' => (true, &v[1..]),
        b'+' => (false, &v[1..]),
        _ => (false, v),
    };
    if digits.is_empty() {
        return None;
    }
    let mut acc: i64 = 0;
    for &b in digits {
        p.alu(3); // range check + mul + add
        if !br!(p, b.is_ascii_digit()) {
            return None;
        }
        acc = acc.checked_mul(10)?.checked_add((b - b'0') as i64)?;
    }
    Some(if neg { -acc } else { acc })
}

fn check_decimal<P: Probe>(value: &[u8], p: &mut P) -> bool {
    let v = trim(value);
    p.alu(2);
    if v.is_empty() {
        return false;
    }
    let body = match v[0] {
        b'-' | b'+' => &v[1..],
        _ => v,
    };
    if body.is_empty() {
        return false;
    }
    let mut seen_dot = false;
    let mut seen_digit = false;
    for &b in body {
        p.alu(2);
        if br!(p, b == b'.') {
            if seen_dot {
                return false;
            }
            seen_dot = true;
        } else if br!(p, b.is_ascii_digit()) {
            seen_digit = true;
        } else {
            return false;
        }
    }
    seen_digit
}

fn check_date<P: Probe>(value: &[u8], p: &mut P) -> bool {
    // CCYY-MM-DD with basic range checks.
    let v = trim(value);
    p.alu(2);
    if v.len() != 10 || v[4] != b'-' || v[7] != b'-' {
        p.branch(site!(), false);
        return false;
    }
    for (i, &b) in v.iter().enumerate() {
        p.alu(1);
        if i == 4 || i == 7 {
            continue;
        }
        if !br!(p, b.is_ascii_digit()) {
            return false;
        }
    }
    let month = (v[5] - b'0') * 10 + (v[6] - b'0');
    let day = (v[8] - b'0') * 10 + (v[9] - b'0');
    p.alu(4);
    (1..=12).contains(&month) && (1..=31).contains(&day)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::NullProbe;

    fn np() -> NullProbe {
        NullProbe
    }

    #[test]
    fn integers() {
        assert!(check_builtin(BuiltinType::Integer, b"42", &mut np()));
        assert!(check_builtin(BuiltinType::Integer, b"-7", &mut np()));
        assert!(check_builtin(BuiltinType::Integer, b" 13 ", &mut np()));
        assert!(!check_builtin(BuiltinType::Integer, b"", &mut np()));
        assert!(!check_builtin(BuiltinType::Integer, b"1.5", &mut np()));
        assert!(!check_builtin(BuiltinType::Integer, b"x", &mut np()));
        assert!(!check_builtin(BuiltinType::Integer, b"-", &mut np()));
    }

    #[test]
    fn integer_subtypes() {
        assert!(check_builtin(BuiltinType::NonNegativeInteger, b"0", &mut np()));
        assert!(!check_builtin(BuiltinType::NonNegativeInteger, b"-1", &mut np()));
        assert!(check_builtin(BuiltinType::PositiveInteger, b"1", &mut np()));
        assert!(!check_builtin(BuiltinType::PositiveInteger, b"0", &mut np()));
    }

    #[test]
    fn decimals() {
        assert!(check_builtin(BuiltinType::Decimal, b"3.14", &mut np()));
        assert!(check_builtin(BuiltinType::Decimal, b"-0.5", &mut np()));
        assert!(check_builtin(BuiltinType::Decimal, b"10", &mut np()));
        assert!(!check_builtin(BuiltinType::Decimal, b"1.2.3", &mut np()));
        assert!(!check_builtin(BuiltinType::Decimal, b".", &mut np()));
        assert!(!check_builtin(BuiltinType::Decimal, b"1e5", &mut np()));
    }

    #[test]
    fn booleans() {
        for ok in [&b"true"[..], b"false", b"1", b"0", b" true "] {
            assert!(check_builtin(BuiltinType::Boolean, ok, &mut np()));
        }
        assert!(!check_builtin(BuiltinType::Boolean, b"TRUE", &mut np()));
        assert!(!check_builtin(BuiltinType::Boolean, b"yes", &mut np()));
    }

    #[test]
    fn dates() {
        assert!(check_builtin(BuiltinType::Date, b"2007-03-14", &mut np()));
        assert!(!check_builtin(BuiltinType::Date, b"2007-13-14", &mut np()));
        assert!(!check_builtin(BuiltinType::Date, b"2007-00-14", &mut np()));
        assert!(!check_builtin(BuiltinType::Date, b"2007-3-14", &mut np()));
        assert!(!check_builtin(BuiltinType::Date, b"20070314", &mut np()));
    }

    #[test]
    fn any_uri() {
        assert!(check_builtin(BuiltinType::AnyUri, b"http://example.com/a?b=c", &mut np()));
        assert!(!check_builtin(BuiltinType::AnyUri, b"has space", &mut np()));
    }

    #[test]
    fn length_facets() {
        let f = Facets { min_length: Some(2), max_length: Some(4), ..Default::default() };
        assert!(!check_facets(&f, b"a", &mut np()));
        assert!(check_facets(&f, b"ab", &mut np()));
        assert!(check_facets(&f, b"abcd", &mut np()));
        assert!(!check_facets(&f, b"abcde", &mut np()));
    }

    #[test]
    fn range_facets() {
        let f = Facets { min_inclusive: Some(1), max_inclusive: Some(10), ..Default::default() };
        assert!(check_facets(&f, b"1", &mut np()));
        assert!(check_facets(&f, b"10", &mut np()));
        assert!(!check_facets(&f, b"0", &mut np()));
        assert!(!check_facets(&f, b"11", &mut np()));
        assert!(!check_facets(&f, b"abc", &mut np()));
    }

    #[test]
    fn trim_works() {
        assert_eq!(trim(b"  x "), b"x");
        assert_eq!(trim(b""), b"");
        assert_eq!(trim(b"   "), b"");
        assert_eq!(trim(b"ab"), b"ab");
    }

    #[test]
    fn parse_int_overflow_is_none() {
        assert_eq!(parse_int(b"99999999999999999999999999", &mut np()), None);
    }
}
