//! DOM serialization.
//!
//! Re-emits a parsed document as XML bytes — the canonicalization step an
//! AON device performs when it forwards a validated/transformed message
//! rather than the raw input. Traced: node and string reads come from the
//! `WORK` arena (warm — the DOM was just built), output stores stream into
//! the `OUT` region, and every text byte passes through the escaping
//! check.

use crate::dom::{Document, NodeId, NodeKind};
use aon_trace::{br, site, Addr, Probe, RegionSlot};

/// Serialize the subtree rooted at `node` into `out`, tracing the work on
/// `p`. Returns the number of bytes written.
pub fn serialize_node<P: Probe>(
    doc: &Document,
    node: NodeId,
    out: &mut Vec<u8>,
    p: &mut P,
) -> usize {
    let start = out.len();
    let mut ser = Serializer { doc, out, probe: p, out_cursor: 0 };
    ser.node(node);
    out.len() - start
}

/// Serialize a whole document (from the root element).
pub fn serialize_document<P: Probe>(doc: &Document, p: &mut P) -> Vec<u8> {
    let mut out = Vec::with_capacity(4096);
    if let Ok(root) = doc.root() {
        serialize_node(doc, root, &mut out, p);
    }
    out
}

struct Serializer<'d, 'o, P: Probe> {
    doc: &'d Document,
    out: &'o mut Vec<u8>,
    probe: &'d mut P,
    out_cursor: u32,
}

impl<P: Probe> Serializer<'_, '_, P> {
    /// Append raw bytes, tracing one store per word.
    fn emit(&mut self, bytes: &[u8]) {
        let words = (bytes.len() as u32).div_ceil(8);
        for w in 0..words {
            self.probe.store(Addr::new(RegionSlot::OUT, self.out_cursor + w * 8), 8);
            self.probe.alu(1);
        }
        self.out_cursor += bytes.len() as u32;
        self.out.extend_from_slice(bytes);
    }

    /// Append text with XML escaping (per-byte classify + store).
    fn emit_escaped(&mut self, bytes: &[u8], in_attr: bool) {
        for &b in bytes {
            self.probe.alu(2);
            let escaped: &[u8] = match b {
                b'<' => b"&lt;",
                b'>' => b"&gt;",
                b'&' => b"&amp;",
                b'"' if in_attr => b"&quot;",
                _ => {
                    self.probe.branch(site!(), false);
                    self.probe.store(Addr::new(RegionSlot::OUT, self.out_cursor), 1);
                    self.out_cursor += 1;
                    self.out.push(b);
                    continue;
                }
            };
            self.probe.branch(site!(), true);
            let cur = self.out_cursor;
            self.probe.store(Addr::new(RegionSlot::OUT, cur), escaped.len() as u8);
            self.out_cursor += escaped.len() as u32;
            self.out.extend_from_slice(escaped);
        }
    }

    fn node(&mut self, id: NodeId) {
        match self.doc.kind_t(id, self.probe) {
            NodeKind::Element(name) => {
                let name_bytes = self.doc.name_bytes(name).to_vec();
                // Reading the interned name.
                self.probe.alu((name_bytes.len() as u32).div_ceil(8) + 1);
                self.emit(b"<");
                self.emit(&name_bytes);
                // Attributes.
                let attrs = self.doc.attrs_t(id, self.probe).to_vec();
                for a in &attrs {
                    let aname = self.doc.name_bytes(a.name).to_vec();
                    let aval = self.doc.str_bytes(a.value).to_vec();
                    self.emit(b" ");
                    self.emit(&aname);
                    self.emit(b"=\"");
                    self.emit_escaped(&aval, true);
                    self.emit(b"\"");
                }
                let first = self.doc.first_child_t(id, self.probe);
                if br!(self.probe, first.is_none()) {
                    self.emit(b"/>");
                    return;
                }
                self.emit(b">");
                let mut cur = first;
                while let Some(c) = cur {
                    self.node(c);
                    cur = self.doc.next_sibling_t(c, self.probe);
                }
                self.emit(b"</");
                self.emit(&name_bytes);
                self.emit(b">");
            }
            NodeKind::Text(_) => {
                let text = self.doc.text_bytes_t(id, self.probe);
                self.emit_escaped(&text, false);
            }
            NodeKind::Comment => {}
            NodeKind::Pi(target) => {
                let t = self.doc.str_bytes(target).to_vec();
                self.emit(b"<?");
                self.emit(&t);
                self.emit(b"?>");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::TBuf;
    use crate::parser::parse_document;
    use aon_trace::{NullProbe, Tracer};

    fn roundtrip(input: &[u8]) -> Vec<u8> {
        let doc = parse_document(TBuf::msg(input), &mut NullProbe).unwrap();
        serialize_document(&doc, &mut NullProbe)
    }

    #[test]
    fn simple_roundtrip() {
        assert_eq!(roundtrip(b"<a><b>hi</b><c/></a>"), b"<a><b>hi</b><c/></a>");
    }

    #[test]
    fn attributes_roundtrip() {
        assert_eq!(
            roundtrip(br#"<a x="1" y="two"><z k="v"/></a>"#),
            br#"<a x="1" y="two"><z k="v"/></a>"#
        );
    }

    #[test]
    fn escaping_applied() {
        let out = roundtrip(b"<a>1 &lt; 2 &amp; 3</a>");
        assert_eq!(out, b"<a>1 &lt; 2 &amp; 3</a>");
        let out = roundtrip(br#"<a q="say &quot;hi&quot;"/>"#);
        assert_eq!(out, br#"<a q="say &quot;hi&quot;"/>"#);
    }

    #[test]
    fn reparse_of_output_matches() {
        let input = br#"<order id="7"><item><sku>AB12</sku><quantity>1</quantity></item><note>a&amp;b</note></order>"#;
        let once = roundtrip(input);
        let twice = roundtrip(&once);
        assert_eq!(once, twice, "serialization is a fixed point after one pass");
    }

    #[test]
    fn serialization_is_traced() {
        let doc = parse_document(
            TBuf::msg(b"<r><a>hello world</a><b x=\"1\">text</b></r>"),
            &mut NullProbe,
        )
        .unwrap();
        let mut t = Tracer::new();
        let out = serialize_document(&doc, &mut t);
        let s = t.finish().stats();
        assert!(s.stores as usize >= out.len() / 8, "output stores traced");
        assert!(s.loads > 10, "DOM reads traced");
    }
}
