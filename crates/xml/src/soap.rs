//! SOAP envelope helpers.
//!
//! AON traffic arrives as SOAP messages over HTTP POST (paper §3.2.1). These
//! helpers locate the envelope parts in a parsed document and build
//! envelopes around payloads — both traced, since envelope handling is part
//! of the per-message work.

use crate::dom::{Document, NodeId, NodeKind};
use crate::error::{XmlError, XmlErrorKind, XmlResult};
use crate::lazy::{LazyDoc, LazyId, LazyKind};
use aon_trace::Probe;

/// Does this element's (possibly prefixed) name have the given local part?
fn local_name_is<P: Probe>(doc: &Document, node: NodeId, local: &[u8], p: &mut P) -> bool {
    match doc.kind_t(node, p) {
        NodeKind::Element(nm) => {
            let bytes = doc.name_bytes(nm);
            p.alu((bytes.len() as u32).div_ceil(4) + 1);
            let stripped = match bytes.iter().rposition(|&b| b == b':') {
                Some(i) => &bytes[i + 1..],
                None => bytes,
            };
            stripped == local
        }
        _ => false,
    }
}

/// Find the SOAP `Body` element of a parsed envelope.
pub fn find_body<P: Probe>(doc: &Document, p: &mut P) -> XmlResult<NodeId> {
    let root = doc.root()?;
    if !local_name_is(doc, root, b"Envelope", p) {
        return Err(XmlError::at(XmlErrorKind::UnexpectedByte, 0));
    }
    let mut cur = doc.first_child_t(root, p);
    while let Some(c) = cur {
        if local_name_is(doc, c, b"Body", p) {
            return Ok(c);
        }
        cur = doc.next_sibling_t(c, p);
    }
    Err(XmlError::at(XmlErrorKind::NoRoot, 0))
}

/// Find the first child element of the SOAP body — the payload root.
pub fn payload_root<P: Probe>(doc: &Document, p: &mut P) -> XmlResult<NodeId> {
    let body = find_body(doc, p)?;
    let mut cur = doc.first_child_t(body, p);
    while let Some(c) = cur {
        if matches!(doc.kind_t(c, p), NodeKind::Element(_)) {
            return Ok(c);
        }
        cur = doc.next_sibling_t(c, p);
    }
    Err(XmlError::at(XmlErrorKind::NoRoot, 0))
}

/// Lazy-DOM twin of [`local_name_is`] (untraced; fast serving path).
fn local_name_is_lazy(doc: &LazyDoc<'_>, node: LazyId, local: &[u8]) -> bool {
    match doc.kind(node) {
        LazyKind::Element(nm) => {
            let bytes = doc.name_bytes(nm);
            let stripped = match bytes.iter().rposition(|&b| b == b':') {
                Some(i) => &bytes[i + 1..],
                None => bytes,
            };
            stripped == local
        }
        _ => false,
    }
}

/// Lazy-DOM twin of [`find_body`]: same walk, same errors.
pub fn find_body_lazy(doc: &LazyDoc<'_>) -> XmlResult<LazyId> {
    let root = doc.root()?;
    if !local_name_is_lazy(doc, root, b"Envelope") {
        return Err(XmlError::at(XmlErrorKind::UnexpectedByte, 0));
    }
    let mut cur = doc.first_child(root);
    while let Some(c) = cur {
        if local_name_is_lazy(doc, c, b"Body") {
            return Ok(c);
        }
        cur = doc.next_sibling(c);
    }
    Err(XmlError::at(XmlErrorKind::NoRoot, 0))
}

/// Lazy-DOM twin of [`payload_root`].
pub fn payload_root_lazy(doc: &LazyDoc<'_>) -> XmlResult<LazyId> {
    let body = find_body_lazy(doc)?;
    let mut cur = doc.first_child(body);
    while let Some(c) = cur {
        if matches!(doc.kind(c), LazyKind::Element(_)) {
            return Ok(c);
        }
        cur = doc.next_sibling(c);
    }
    Err(XmlError::at(XmlErrorKind::NoRoot, 0))
}

/// Wrap `payload` XML in a SOAP 1.1 envelope (native byte building; the
/// traced cost is the output stores, charged by the caller when the bytes
/// are written into a message buffer).
pub fn wrap_envelope(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 200);
    out.extend_from_slice(
        b"<?xml version=\"1.0\"?>\n<soap:Envelope xmlns:soap=\"http://schemas.xmlsoap.org/soap/envelope/\">\n<soap:Body>\n",
    );
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\n</soap:Body>\n</soap:Envelope>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::TBuf;
    use crate::parser::parse_document;
    use aon_trace::NullProbe;

    #[test]
    fn finds_body_and_payload() {
        let doc =
            parse_document(TBuf::msg(crate::samples::SOAP_CBR_MATCH), &mut NullProbe).unwrap();
        let body = find_body(&doc, &mut NullProbe).unwrap();
        assert!(local_name_is(&doc, body, b"Body", &mut NullProbe));
        let payload = payload_root(&doc, &mut NullProbe).unwrap();
        assert!(doc.name_is_t(payload, b"purchaseOrder", &mut NullProbe));
    }

    #[test]
    fn wrap_roundtrips() {
        let env = wrap_envelope(b"<x>1</x>");
        let doc = parse_document(TBuf::msg(&env), &mut NullProbe).unwrap();
        let payload = payload_root(&doc, &mut NullProbe).unwrap();
        assert!(doc.name_is_t(payload, b"x", &mut NullProbe));
    }

    #[test]
    fn non_envelope_rejected() {
        let doc = parse_document(TBuf::msg(b"<notsoap/>"), &mut NullProbe).unwrap();
        assert!(find_body(&doc, &mut NullProbe).is_err());
    }

    #[test]
    fn envelope_without_body_rejected() {
        let doc = parse_document(
            TBuf::msg(b"<soap:Envelope><soap:Header/></soap:Envelope>"),
            &mut NullProbe,
        )
        .unwrap();
        assert!(find_body(&doc, &mut NullProbe).is_err());
    }
}
