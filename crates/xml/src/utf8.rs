//! UTF-8 well-formedness validation.
//!
//! AON devices validate incoming message encoding before content
//! processing (a malformed byte stream must be rejected at the edge, not
//! crash the XPath engine). This is the classic DFA-style byte scan: one
//! load, a classify, and a state branch per byte.

use crate::input::TBuf;
use aon_trace::{br, site, Probe};

/// Validate that `buf` is well-formed UTF-8 (traced per byte). Returns the
/// number of decoded scalar values, or `None` if invalid.
pub fn validate_utf8<P: Probe>(buf: TBuf<'_>, p: &mut P) -> Option<usize> {
    let mut chars = 0usize;
    let mut i = 0usize;
    let len = buf.len();
    while i < len {
        let b = buf.get(i, p);
        p.alu(2);
        if !br!(p, b >= 0x80) {
            // ASCII fast path.
            i += 1;
            chars += 1;
            continue;
        }
        // Multi-byte sequence.
        let (need, min_cp, first_payload) = match b {
            0xC2..=0xDF => (1usize, 0x80u32, (b & 0x1F) as u32),
            0xE0..=0xEF => (2, 0x800, (b & 0x0F) as u32),
            0xF0..=0xF4 => (3, 0x10000, (b & 0x07) as u32),
            _ => {
                p.branch(site!(), true);
                return None;
            }
        };
        p.alu(3);
        let mut cp = first_payload;
        for k in 1..=need {
            let c = buf.try_get(i + k, p)?;
            p.alu(2);
            if !br!(p, c & 0xC0 == 0x80) {
                return None;
            }
            cp = (cp << 6) | (c & 0x3F) as u32;
        }
        p.alu(3);
        if cp < min_cp || cp > 0x10FFFF || (0xD800..=0xDFFF).contains(&cp) {
            p.branch(site!(), true);
            return None;
        }
        i += need + 1;
        chars += 1;
    }
    Some(chars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aon_trace::RegionSlot;
    use aon_trace::{NullProbe, Tracer};

    fn check(bytes: &[u8]) -> Option<usize> {
        validate_utf8(TBuf::new(bytes, RegionSlot::MSG), &mut NullProbe)
    }

    #[test]
    fn ascii_ok() {
        assert_eq!(check(b"hello world"), Some(11));
        assert_eq!(check(b""), Some(0));
    }

    #[test]
    fn multibyte_ok() {
        let s = "héllo ☃ 𝄞";
        assert_eq!(check(s.as_bytes()), Some(s.chars().count()));
    }

    #[test]
    fn rejects_bad_sequences() {
        assert_eq!(check(&[0xC0, 0x80]), None); // overlong
        assert_eq!(check(&[0x80]), None); // lone continuation
        assert_eq!(check(&[0xE2, 0x28, 0xA1]), None); // bad continuation
        assert_eq!(check(&[0xED, 0xA0, 0x80]), None); // surrogate
        assert_eq!(check(&[0xF5, 0x80, 0x80, 0x80]), None); // > U+10FFFF
        assert_eq!(check(&[0xC2]), None); // truncated
    }

    #[test]
    fn agrees_with_std() {
        let cases: Vec<Vec<u8>> = vec![
            b"plain".to_vec(),
            "日本語テキスト".as_bytes().to_vec(),
            vec![0xFF, 0xFE],
            vec![b'a', 0xC3, 0xA9, b'b'],
            vec![0xE0, 0x80, 0xAF],
        ];
        for c in cases {
            assert_eq!(
                check(&c).is_some(),
                std::str::from_utf8(&c).is_ok(),
                "disagreement on {c:?}"
            );
        }
    }

    #[test]
    fn scan_is_traced_per_byte() {
        let mut t = Tracer::new();
        let data = b"abcdefghij";
        validate_utf8(TBuf::new(data, RegionSlot::MSG), &mut t).unwrap();
        let s = t.finish().stats();
        assert!(s.loads >= data.len() as u64);
        assert!(s.branches >= data.len() as u64);
    }
}
