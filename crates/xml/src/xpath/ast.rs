//! Compiled XPath representation.

/// Traversal axis of a location step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// Direct children.
    Child,
    /// All descendants (not self).
    Descendant,
    /// Self and all descendants (the `//` axis).
    DescendantOrSelf,
    /// The context node itself.
    SelfAxis,
    /// The parent node.
    Parent,
    /// Attributes.
    Attribute,
}

/// What a step matches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTest {
    /// A specific element/attribute name.
    Name(Vec<u8>),
    /// Any element (or any attribute on the attribute axis).
    AnyName,
    /// `text()` — text nodes.
    Text,
    /// `node()` — any node.
    AnyNode,
}

/// One location step.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// Axis to traverse.
    pub axis: Axis,
    /// Node test to apply.
    pub test: NodeTest,
    /// Predicates, applied in order.
    pub predicates: Vec<Expr>,
}

/// Binary comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `count(node-set)`
    Count,
    /// `contains(a, b)`
    Contains,
    /// `starts-with(a, b)`
    StartsWith,
    /// `not(x)`
    Not,
    /// `true()`
    True,
    /// `false()`
    False,
    /// `position()`
    Position,
    /// `last()`
    Last,
    /// `string(x)`
    String,
    /// `string-length(x)`
    StringLength,
    /// `normalize-space(x)`
    NormalizeSpace,
    /// `name()` — name of the context node.
    Name,
    /// `concat(a, b, ...)`
    Concat,
    /// `substring(s, start [, len])` — 1-based, per XPath rounding rules.
    Substring,
    /// `substring-before(a, b)`
    SubstringBefore,
    /// `substring-after(a, b)`
    SubstringAfter,
    /// `translate(s, from, to)`
    Translate,
}

impl Func {
    /// Look up a function by its XPath name.
    pub fn by_name(name: &str) -> Option<Func> {
        Some(match name {
            "count" => Func::Count,
            "contains" => Func::Contains,
            "starts-with" => Func::StartsWith,
            "not" => Func::Not,
            "true" => Func::True,
            "false" => Func::False,
            "position" => Func::Position,
            "last" => Func::Last,
            "string" => Func::String,
            "string-length" => Func::StringLength,
            "normalize-space" => Func::NormalizeSpace,
            "name" => Func::Name,
            "concat" => Func::Concat,
            "substring" => Func::Substring,
            "substring-before" => Func::SubstringBefore,
            "substring-after" => Func::SubstringAfter,
            "translate" => Func::Translate,
            _ => return None,
        })
    }

    /// (min, max) argument count.
    pub fn arity(self) -> (usize, usize) {
        match self {
            Func::Count | Func::Not => (1, 1),
            Func::Contains | Func::StartsWith => (2, 2),
            Func::True | Func::False | Func::Position | Func::Last => (0, 0),
            Func::String | Func::StringLength | Func::NormalizeSpace => (0, 1),
            Func::Name => (0, 1),
            Func::Concat => (2, 16),
            Func::Substring => (2, 3),
            Func::SubstringBefore | Func::SubstringAfter => (2, 2),
            Func::Translate => (3, 3),
        }
    }
}

/// An expression tree node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A location path. `absolute` paths start at the document root.
    Path {
        /// Whether the path starts with `/` or `//`.
        absolute: bool,
        /// The steps.
        steps: Vec<Step>,
    },
    /// A string literal.
    Literal(Vec<u8>),
    /// A number literal.
    Number(f64),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical and (short-circuit).
    And(Box<Expr>, Box<Expr>),
    /// Logical or (short-circuit).
    Or(Box<Expr>, Box<Expr>),
    /// Node-set union.
    Union(Box<Expr>, Box<Expr>),
    /// Function call.
    Call(Func, Vec<Expr>),
}

impl Expr {
    /// Count AST records for STATIC-region layout (each step and expression
    /// node occupies one record whose read is traced during evaluation).
    pub fn count_records(&self) -> u32 {
        match self {
            Expr::Path { steps, .. } => {
                1 + steps
                    .iter()
                    .map(|s| 1 + s.predicates.iter().map(Expr::count_records).sum::<u32>())
                    .sum::<u32>()
            }
            Expr::Literal(_) | Expr::Number(_) => 1,
            Expr::Cmp(_, a, b) | Expr::And(a, b) | Expr::Or(a, b) | Expr::Union(a, b) => {
                1 + a.count_records() + b.count_records()
            }
            Expr::Call(_, args) => 1 + args.iter().map(Expr::count_records).sum::<u32>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn func_lookup() {
        assert_eq!(Func::by_name("count"), Some(Func::Count));
        assert_eq!(Func::by_name("starts-with"), Some(Func::StartsWith));
        assert_eq!(Func::by_name("bogus"), None);
    }

    #[test]
    fn record_counting() {
        let e = Expr::Cmp(
            CmpOp::Eq,
            Box::new(Expr::Path {
                absolute: false,
                steps: vec![Step {
                    axis: Axis::Child,
                    test: NodeTest::AnyName,
                    predicates: vec![],
                }],
            }),
            Box::new(Expr::Literal(b"1".to_vec())),
        );
        // cmp + path + step + literal
        assert_eq!(e.count_records(), 4);
    }
}
