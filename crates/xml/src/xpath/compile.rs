//! Compiled path patterns for the fast (untraced) serving path.
//!
//! [`XPath::string_equals`] walks the expression AST and the traced DOM on
//! every message. For the router's actual rule shapes — fixed location
//! paths like the paper's `//quantity/text()` — that is wasted generality:
//! the path can be compiled *once* into a flat step program evaluated
//! directly over the lazy document, with element names resolved to interned
//! ids up front so matching is integer compares instead of byte compares.
//!
//! [`CompiledPath::compile`] accepts the *streamable subset*: location
//! paths built from `child::`/`descendant::` name steps and the `//`
//! desugar, with an optional trailing `text()` step and no predicates.
//! Anything richer returns `None` and the caller falls back to the DOM
//! evaluator — so compilation can never change a verdict, only the cost of
//! reaching it. The differential suite pins
//! [`CompiledPath::string_equals`] against [`XPath::string_equals`] over
//! the same inputs.
//!
//! Compiled patterns are plain data (`Send + Sync`): rule tables share one
//! `Arc<CompiledPath>` per expression across worker threads.

use super::ast::{Axis, Expr, NodeTest};
use super::XPath;
use crate::lazy::{LazyDoc, LazyId, LazyKind, LazyName};

/// One element-name step of a compiled path.
#[derive(Debug, Clone)]
struct PatStep {
    /// Match at any depth below the previous match (`//a`, `descendant::a`)
    /// rather than only among direct children.
    descendant: bool,
    /// The element name to match.
    name: Vec<u8>,
}

/// A location path compiled to a flat matcher over [`LazyDoc`].
#[derive(Debug, Clone)]
pub struct CompiledPath {
    /// Path starts at the document node (`/…`) vs. the context element.
    absolute: bool,
    /// Element steps, outermost first.
    steps: Vec<PatStep>,
    /// Final `text()` step: compare each matched element's direct text
    /// children instead of its whole-subtree string value.
    trailing_text: bool,
}

impl CompiledPath {
    /// Compile `xp` if it falls in the streamable subset, `None` otherwise.
    pub fn compile(xp: &XPath) -> Option<CompiledPath> {
        let Expr::Path { absolute, steps } = xp.expr() else {
            return None;
        };
        let mut out: Vec<PatStep> = Vec::new();
        let mut pending_desc = false;
        let mut trailing_text = false;
        for (i, step) in steps.iter().enumerate() {
            if !step.predicates.is_empty() {
                return None;
            }
            let last = i + 1 == steps.len();
            match (&step.axis, &step.test) {
                // The `//` desugar: fold into a descendant flag on the next
                // named step. A trailing one has no step to fold into.
                (Axis::DescendantOrSelf, NodeTest::AnyNode) => {
                    if last {
                        return None;
                    }
                    pending_desc = true;
                }
                (Axis::Child, NodeTest::Name(n)) => {
                    out.push(PatStep { descendant: pending_desc, name: n.clone() });
                    pending_desc = false;
                }
                // `descendant::a` after `//` is still just "descendant".
                (Axis::Descendant, NodeTest::Name(n)) => {
                    out.push(PatStep { descendant: true, name: n.clone() });
                    pending_desc = false;
                }
                (Axis::Child, NodeTest::Text) if last && !pending_desc => {
                    trailing_text = true;
                }
                // `self::`/`parent::`/`attribute::`, wildcards, explicit
                // `descendant-or-self::name` (self can match): DOM fallback.
                _ => return None,
            }
        }
        if pending_desc {
            return None;
        }
        Some(CompiledPath { absolute: *absolute, steps: out, trailing_text })
    }

    /// The router's question, over the lazy document: does any node the
    /// path selects have string-value `expect`? Verdict-equivalent to
    /// [`XPath::string_equals`] on the eager DOM of the same bytes.
    pub fn string_equals(&self, doc: &LazyDoc<'_>, expect: &[u8]) -> bool {
        let Ok(root) = doc.root() else {
            return false;
        };
        // Resolve step names against the document's intern table once. A
        // name that never occurs in the document means nothing can match.
        let mut names: Vec<LazyName> = Vec::with_capacity(self.steps.len());
        for s in &self.steps {
            match doc.find_name(&s.name) {
                Some(id) => names.push(id),
                None => return false,
            }
        }
        let ctx = if self.absolute { Ctx::Document(root) } else { Ctx::Node(root) };
        self.match_from(doc, ctx, &names, 0, expect)
    }

    /// Try to extend a partial match: `ctx` matched `steps[..i]`; succeed
    /// if any completion reaches a node whose string-value is `expect`.
    fn match_from(
        &self,
        doc: &LazyDoc<'_>,
        ctx: Ctx,
        names: &[LazyName],
        i: usize,
        expect: &[u8],
    ) -> bool {
        if i == self.steps.len() {
            return self.final_check(doc, ctx, expect);
        }
        let want = names[i];
        let descend = self.steps[i].descendant;
        match ctx {
            // The document node's only element child is the root (top-level
            // PIs and comments are not kept by either parser).
            Ctx::Document(root) => {
                if descend {
                    for id in doc.descendants(root) {
                        if doc.kind(id) == LazyKind::Element(want)
                            && self.match_from(doc, Ctx::Node(id), names, i + 1, expect)
                        {
                            return true;
                        }
                    }
                } else if doc.kind(root) == LazyKind::Element(want)
                    && self.match_from(doc, Ctx::Node(root), names, i + 1, expect)
                {
                    return true;
                }
            }
            Ctx::Node(n) => {
                if descend {
                    // Strict descendants: skip the context node itself.
                    for id in doc.descendants(n).skip(1) {
                        if doc.kind(id) == LazyKind::Element(want)
                            && self.match_from(doc, Ctx::Node(id), names, i + 1, expect)
                        {
                            return true;
                        }
                    }
                } else {
                    let mut cur = doc.first_child(n);
                    while let Some(c) = cur {
                        if doc.kind(c) == LazyKind::Element(want)
                            && self.match_from(doc, Ctx::Node(c), names, i + 1, expect)
                        {
                            return true;
                        }
                        cur = doc.next_sibling(c);
                    }
                }
            }
        }
        false
    }

    /// All steps matched at `ctx`: apply the value comparison.
    fn final_check(&self, doc: &LazyDoc<'_>, ctx: Ctx, expect: &[u8]) -> bool {
        match ctx {
            // Bare `/`: the document's string-value is the root's.
            Ctx::Document(root) => !self.trailing_text && subtree_text_eq(doc, root, expect),
            Ctx::Node(n) => {
                if self.trailing_text {
                    // `text()` selects each direct text child as its own
                    // node; XPath `=` over a node-set is existential.
                    let mut cur = doc.first_child(n);
                    while let Some(c) = cur {
                        if let LazyKind::Text(v) = doc.kind(c) {
                            if doc.value(v) == expect {
                                return true;
                            }
                        }
                        cur = doc.next_sibling(c);
                    }
                    false
                } else {
                    subtree_text_eq(doc, n, expect)
                }
            }
        }
    }
}

/// A match context: the document node or an element.
#[derive(Debug, Clone, Copy)]
enum Ctx {
    /// The virtual document node (carries the root element id).
    Document(LazyId),
    /// An element node.
    Node(LazyId),
}

/// Does the element's string-value — the concatenation of every descendant
/// text node in document order — equal `expect`? Compares incrementally,
/// no concatenation buffer.
fn subtree_text_eq(doc: &LazyDoc<'_>, id: LazyId, expect: &[u8]) -> bool {
    fn walk(doc: &LazyDoc<'_>, id: LazyId, rest: &mut &[u8]) -> bool {
        let mut cur = doc.first_child(id);
        while let Some(c) = cur {
            match doc.kind(c) {
                LazyKind::Text(v) => {
                    let piece = doc.value(v);
                    if piece.len() > rest.len() || &rest[..piece.len()] != piece {
                        return false;
                    }
                    *rest = &rest[piece.len()..];
                }
                LazyKind::Element(_) => {
                    if !walk(doc, c, rest) {
                        return false;
                    }
                }
                LazyKind::Comment | LazyKind::Pi(_) => {}
            }
            cur = doc.next_sibling(c);
        }
        true
    }
    let mut rest = expect;
    walk(doc, id, &mut rest) && rest.is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::TBuf;
    use crate::lazy::parse_document_lazy;
    use crate::parser::parse_document;
    use aon_trace::NullProbe;

    const PO: &[u8] = br#"<order id="7">
        <item><name>bolt</name><quantity>1</quantity></item>
        <item><name>nut</name><quantity>25</quantity></item>
        <note lang="en">rush</note>
    </order>"#;

    /// Compiled verdict must equal the DOM evaluator's on the same bytes.
    fn assert_differential(source: &str, input: &[u8], expects: &[&[u8]]) {
        let xp = XPath::compile(source).unwrap();
        let cp =
            CompiledPath::compile(&xp).unwrap_or_else(|| panic!("{source:?} should be streamable"));
        let eager = parse_document(TBuf::msg(input), &mut NullProbe).unwrap();
        let lazy = parse_document_lazy(input).unwrap();
        for expect in expects {
            let want = xp.string_equals(&eager, expect, &mut NullProbe).unwrap();
            let got = cp.string_equals(&lazy, expect);
            assert_eq!(got, want, "{source:?} = {:?}", String::from_utf8_lossy(expect));
        }
    }

    #[test]
    fn paper_expression_matches() {
        assert_differential("//quantity/text()", PO, &[b"1", b"25", b"99", b"", b"rush"]);
    }

    #[test]
    fn absolute_child_paths() {
        assert_differential("/order/item/name/text()", PO, &[b"bolt", b"nut", b"x", b""]);
        assert_differential("/order/note/text()", PO, &[b"rush", b"bolt"]);
        assert_differential("/wrong/item/text()", PO, &[b"bolt", b""]);
    }

    #[test]
    fn relative_paths_start_below_the_root() {
        // Relative paths are evaluated with the root element as context.
        assert_differential("item/name/text()", PO, &[b"bolt", b"order", b""]);
        assert_differential("note/text()", PO, &[b"rush"]);
        // `order` is the root itself, not a child of the context.
        assert_differential("order/note/text()", PO, &[b"rush"]);
    }

    #[test]
    fn element_string_value_concatenates_descendants() {
        // No trailing text(): compare the element's whole-subtree text.
        assert_differential("//item", PO, &[b"bolt1", b"nut25", b"bolt", b"1"]);
        assert_differential("/order/note", PO, &[b"rush", b""]);
    }

    #[test]
    fn descendant_step_mid_path() {
        let input = b"<r><a><b><q>7</q></b></a><q>8</q></r>";
        assert_differential("//a//q/text()", input, &[b"7", b"8", b""]);
        assert_differential("/r//q/text()", input, &[b"7", b"8"]);
    }

    #[test]
    fn split_text_nodes_stay_separate_under_text_test() {
        // CDATA splits the text into two nodes; text() compares each alone,
        // while the element string-value concatenates them.
        let input = b"<r><q>ab<![CDATA[cd]]></q></r>";
        assert_differential("//q/text()", input, &[b"ab", b"cd", b"abcd"]);
        assert_differential("//q", input, &[b"abcd", b"ab"]);
    }

    #[test]
    fn entity_bearing_text_is_decoded_for_comparison() {
        let input = b"<r><q>a&amp;b</q></r>";
        assert_differential("//q/text()", input, &[b"a&b", b"a&amp;b"]);
    }

    #[test]
    fn bare_root_path() {
        assert_differential("/", b"<r>ab<c>cd</c></r>", &[b"abcd", b"ab"]);
    }

    #[test]
    fn missing_name_short_circuits() {
        let xp = XPath::compile("//nosuch/text()").unwrap();
        let cp = CompiledPath::compile(&xp).unwrap();
        let lazy = parse_document_lazy(PO).unwrap();
        assert!(!cp.string_equals(&lazy, b"1"));
    }

    #[test]
    fn non_streamable_shapes_fall_back() {
        for source in [
            "//item[2]/name",       // positional predicate
            "//item[quantity='1']", // comparison predicate
            "/order/@id",           // attribute axis
            "//name | //note",      // union
            "count(//item)",        // function call
            "//quantity/..",        // parent axis
            "/order/*",             // wildcard name test
            "//quantity/node()",    // node() test mid/trailing
            ".",                    // self axis
        ] {
            let xp = XPath::compile(source).unwrap();
            assert!(CompiledPath::compile(&xp).is_none(), "{source:?} should not be streamable");
        }
    }

    #[test]
    fn streamable_shapes_compile() {
        for source in ["//quantity/text()", "/order/item", "item/name", "//a//b//c/text()", "/"] {
            let xp = XPath::compile(source).unwrap();
            assert!(CompiledPath::compile(&xp).is_some(), "{source:?} should compile");
        }
    }
}
