//! XPath evaluator over the arena DOM.
//!
//! Evaluation is traced: every compiled-program record read emits a load in
//! the `STATIC` region (the compiled path is device configuration, resident
//! across requests), DOM traversal goes through the traced accessors of
//! [`Document`], and string comparisons emit word-compare loops. This gives
//! the CBR use case its characteristic mix: warm static data + cold message
//! data + heavy branching.

use super::ast::{Axis, CmpOp, Expr, Func, NodeTest, Step};
use crate::dom::{Document, NodeId, NodeKind};
use aon_trace::{br, Addr, Probe, RegionSlot};

/// Region offset where compiled XPath records notionally live.
const XPATH_STATIC_BASE: u32 = 0x4000;
/// Size of one compiled record.
const RECORD_SIZE: u32 = 16;

/// Trace the read of compiled-record `idx`.
#[inline]
fn touch_record<P: Probe>(idx: u32, p: &mut P) {
    p.load(Addr::new(RegionSlot::STATIC, XPATH_STATIC_BASE + idx * RECORD_SIZE), 8);
    p.alu(1);
}

/// An XPath 1.0 value.
#[derive(Debug, Clone, PartialEq)]
pub enum XPathValue {
    /// A set of nodes in document order.
    NodeSet(Vec<NodeId>),
    /// A string.
    Str(Vec<u8>),
    /// A number (XPath numbers are IEEE doubles).
    Num(f64),
    /// A boolean.
    Bool(bool),
}

impl XPathValue {
    /// XPath `string()` coercion. For node-sets: string-value of the first
    /// node (empty string for an empty set).
    pub fn string_value<P: Probe>(&self, doc: &Document, p: &mut P) -> Vec<u8> {
        match self {
            XPathValue::NodeSet(ns) => match ns.first() {
                Some(&n) => node_string_value(doc, n, p),
                None => Vec::new(),
            },
            XPathValue::Str(s) => s.clone(),
            XPathValue::Num(n) => format_number(*n).into_bytes(),
            XPathValue::Bool(b) => {
                if *b {
                    b"true".to_vec()
                } else {
                    b"false".to_vec()
                }
            }
        }
    }

    /// XPath `number()` coercion.
    pub fn number_value<P: Probe>(&self, doc: &Document, p: &mut P) -> f64 {
        match self {
            XPathValue::Num(n) => *n,
            XPathValue::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            _ => parse_number(&self.string_value(doc, p)),
        }
    }

    /// XPath `boolean()` coercion.
    pub fn boolean_value<P: Probe>(&self, _doc: &Document, p: &mut P) -> bool {
        // Coercion itself is a couple of ALU ops.
        p.alu(2);
        match self {
            XPathValue::NodeSet(ns) => !ns.is_empty(),
            XPathValue::Str(s) => !s.is_empty(),
            XPathValue::Num(n) => *n != 0.0 && !n.is_nan(),
            XPathValue::Bool(b) => *b,
        }
    }
}

/// String-value of a node: concatenated descendant text for elements, own
/// text for text nodes, the attribute value for attribute pseudo-nodes.
pub fn node_string_value<P: Probe>(doc: &Document, n: NodeId, p: &mut P) -> Vec<u8> {
    if n.is_attr() {
        let rec = doc.attr_rec(n);
        let words = rec.value.len.div_ceil(8);
        for w in 0..words {
            p.load(doc.str_addr(rec.value.off + w * 8), 8);
        }
        p.alu(words + 1);
        return doc.str_bytes(rec.value).to_vec();
    }
    if n.is_document() {
        return match doc.root() {
            Ok(root) => node_string_value(doc, root, p),
            Err(_) => Vec::new(),
        };
    }
    match doc.kind_t(n, p) {
        NodeKind::Text(_) => doc.text_bytes_t(n, p),
        NodeKind::Element(_) => {
            // Recursive descendant-text concatenation.
            let mut out = Vec::new();
            collect_text(doc, n, &mut out, p);
            out
        }
        _ => Vec::new(),
    }
}

fn collect_text<P: Probe>(doc: &Document, n: NodeId, out: &mut Vec<u8>, p: &mut P) {
    let mut cur = doc.first_child_t(n, p);
    while let Some(c) = cur {
        match doc.kind_t(c, p) {
            NodeKind::Text(_) => out.extend_from_slice(&doc.text_bytes_t(c, p)),
            NodeKind::Element(_) => collect_text(doc, c, out, p),
            _ => {}
        }
        cur = doc.next_sibling_t(c, p);
    }
}

/// XPath string → number ("NaN" on failure, per spec).
fn parse_number(s: &[u8]) -> f64 {
    std::str::from_utf8(s).ok().and_then(|t| t.trim().parse::<f64>().ok()).unwrap_or(f64::NAN)
}

/// An XPath number for a position, node-set size or string length. All of
/// these are bounded by the u32 DOM arena, so the conversion is exact.
fn usize_num(n: usize) -> f64 {
    f64::from(u32::try_from(n).expect("XPath cardinalities fit u32"))
}

/// XPath number → string (integer formatting when integral).
fn format_number(n: f64) -> String {
    if n.is_nan() {
        "NaN".to_string()
    } else if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

struct Ctx {
    /// Monotonic compiled-record index for tracing reads of the program.
    next_record: u32,
}

/// Evaluate `expr` with `ctx_node` as the context node.
pub fn eval_expr<P: Probe>(expr: &Expr, doc: &Document, ctx_node: NodeId, p: &mut P) -> XPathValue {
    let mut ctx = Ctx { next_record: 0 };
    eval(expr, doc, ctx_node, 1, 1, &mut ctx, p)
}

fn eval<P: Probe>(
    expr: &Expr,
    doc: &Document,
    ctx_node: NodeId,
    position: usize,
    size: usize,
    ctx: &mut Ctx,
    p: &mut P,
) -> XPathValue {
    let rec = ctx.next_record;
    ctx.next_record += 1;
    touch_record(rec, p);
    match expr {
        Expr::Literal(s) => XPathValue::Str(s.clone()),
        Expr::Number(n) => XPathValue::Num(*n),
        Expr::Path { absolute, steps } => {
            if *absolute && steps.is_empty() {
                // Bare "/": the root element.
                return XPathValue::NodeSet(doc.root().ok().into_iter().collect());
            }
            let start = if *absolute { vec![NodeId::DOCUMENT] } else { vec![ctx_node] };
            XPathValue::NodeSet(eval_path(steps, doc, start, ctx, p))
        }
        Expr::And(a, b) => {
            let lhs = eval(a, doc, ctx_node, position, size, ctx, p).boolean_value(doc, p);
            if !br!(p, lhs) {
                return XPathValue::Bool(false);
            }
            let rhs = eval(b, doc, ctx_node, position, size, ctx, p).boolean_value(doc, p);
            XPathValue::Bool(rhs)
        }
        Expr::Or(a, b) => {
            let lhs = eval(a, doc, ctx_node, position, size, ctx, p).boolean_value(doc, p);
            if br!(p, lhs) {
                return XPathValue::Bool(true);
            }
            let rhs = eval(b, doc, ctx_node, position, size, ctx, p).boolean_value(doc, p);
            XPathValue::Bool(rhs)
        }
        Expr::Union(a, b) => {
            let mut left = match eval(a, doc, ctx_node, position, size, ctx, p) {
                XPathValue::NodeSet(ns) => ns,
                _ => Vec::new(),
            };
            let right = match eval(b, doc, ctx_node, position, size, ctx, p) {
                XPathValue::NodeSet(ns) => ns,
                _ => Vec::new(),
            };
            for n in right {
                p.alu(2);
                if !left.contains(&n) {
                    left.push(n);
                }
            }
            left.sort();
            p.alu(left.len() as u32);
            XPathValue::NodeSet(left)
        }
        Expr::Cmp(op, a, b) => {
            let lhs = eval(a, doc, ctx_node, position, size, ctx, p);
            let rhs = eval(b, doc, ctx_node, position, size, ctx, p);
            XPathValue::Bool(compare(*op, &lhs, &rhs, doc, p))
        }
        Expr::Call(func, args) => eval_call(*func, args, doc, ctx_node, position, size, ctx, p),
    }
}

fn eval_path<P: Probe>(
    steps: &[Step],
    doc: &Document,
    start: Vec<NodeId>,
    ctx: &mut Ctx,
    p: &mut P,
) -> Vec<NodeId> {
    let mut current = start;
    for step in steps {
        let rec = ctx.next_record;
        ctx.next_record += 1;
        touch_record(rec, p);
        let mut next: Vec<NodeId> = Vec::new();
        for &node in &current {
            if step.axis == Axis::Attribute {
                let filter = match &step.test {
                    NodeTest::Name(name) => Some(name.as_slice()),
                    NodeTest::AnyName | NodeTest::AnyNode => None,
                    NodeTest::Text => continue,
                };
                for a in doc.attr_nodes_t(node, filter, p) {
                    if !next.contains(&a) {
                        next.push(a);
                    }
                }
                continue;
            }
            let mut candidates: Vec<NodeId> = Vec::new();
            collect_axis(step.axis, doc, node, &mut candidates, p);
            for c in candidates {
                if node_test_matches(&step.test, doc, c, p) && !next.contains(&c) {
                    next.push(c);
                }
            }
        }
        // Keep document order (NodeIds are allocated in document order).
        next.sort();
        p.alu(next.len() as u32);
        // Predicates filter with (position, size) context.
        for pred in &step.predicates {
            let size = next.len();
            let mut kept = Vec::new();
            for (i, &n) in next.iter().enumerate() {
                let v = eval(pred, doc, n, i + 1, size, ctx, p);
                let keep = match v {
                    // A numeric predicate selects by position.
                    XPathValue::Num(want) => usize_num(i + 1) == want,
                    other => other.boolean_value(doc, p),
                };
                if br!(p, keep) {
                    kept.push(n);
                }
            }
            next = kept;
        }
        current = next;
    }
    current
}

fn collect_axis<P: Probe>(
    axis: Axis,
    doc: &Document,
    node: NodeId,
    out: &mut Vec<NodeId>,
    p: &mut P,
) {
    // Attribute pseudo-nodes have no children/descendants and their parent
    // (the owning element) is not tracked; all axes yield nothing except
    // self.
    if node.is_attr() {
        if axis == Axis::SelfAxis || axis == Axis::DescendantOrSelf {
            out.push(node);
        }
        return;
    }
    match axis {
        Axis::Child => {
            let mut cur =
                if node.is_document() { doc.root().ok() } else { doc.first_child_t(node, p) };
            while let Some(c) = cur {
                out.push(c);
                cur = if node.is_document() { None } else { doc.next_sibling_t(c, p) };
            }
        }
        Axis::Descendant => {
            if node.is_document() {
                if let Ok(root) = doc.root() {
                    out.push(root);
                    collect_axis(Axis::Descendant, doc, root, out, p);
                }
                return;
            }
            let mut cur = doc.first_child_t(node, p);
            while let Some(c) = cur {
                out.push(c);
                collect_axis(Axis::Descendant, doc, c, out, p);
                cur = doc.next_sibling_t(c, p);
            }
        }
        Axis::DescendantOrSelf => {
            out.push(node);
            collect_axis(Axis::Descendant, doc, node, out, p);
        }
        Axis::SelfAxis => out.push(node),
        Axis::Parent => {
            if node.is_document() {
                return;
            }
            match doc.parent_t(node, p) {
                Some(par) => out.push(par),
                // The parent of the root element is the document node.
                None => out.push(NodeId::DOCUMENT),
            }
        }
        Axis::Attribute => unreachable!("attribute axis handled in eval_path"),
    }
}

fn node_test_matches<P: Probe>(test: &NodeTest, doc: &Document, node: NodeId, p: &mut P) -> bool {
    if node.is_document() {
        return matches!(test, NodeTest::AnyNode);
    }
    if node.is_attr() {
        return matches!(test, NodeTest::AnyNode);
    }
    match test {
        NodeTest::Name(name) => doc.name_is_t(node, name, p),
        NodeTest::AnyName => matches!(doc.kind_t(node, p), NodeKind::Element(_)),
        NodeTest::Text => matches!(doc.kind_t(node, p), NodeKind::Text(_)),
        NodeTest::AnyNode => true,
    }
}

#[allow(clippy::too_many_arguments)]
fn eval_call<P: Probe>(
    func: Func,
    args: &[Expr],
    doc: &Document,
    ctx_node: NodeId,
    position: usize,
    size: usize,
    ctx: &mut Ctx,
    p: &mut P,
) -> XPathValue {
    let mut vals: Vec<XPathValue> = Vec::with_capacity(args.len());
    for a in args {
        vals.push(eval(a, doc, ctx_node, position, size, ctx, p));
    }
    match func {
        Func::Count => {
            let n = match &vals[0] {
                XPathValue::NodeSet(ns) => ns.len(),
                _ => 0,
            };
            XPathValue::Num(usize_num(n))
        }
        Func::Contains => {
            let hay = vals[0].string_value(doc, p);
            let needle = vals[1].string_value(doc, p);
            // Naive substring search: the classic byte-compare loop.
            p.alu((hay.len().max(1) as u32) * 2);
            XPathValue::Bool(contains_bytes(&hay, &needle))
        }
        Func::StartsWith => {
            let s = vals[0].string_value(doc, p);
            let prefix = vals[1].string_value(doc, p);
            p.alu(prefix.len().max(1) as u32);
            XPathValue::Bool(s.starts_with(&prefix[..]))
        }
        Func::Not => XPathValue::Bool(!vals[0].boolean_value(doc, p)),
        Func::True => XPathValue::Bool(true),
        Func::False => XPathValue::Bool(false),
        Func::Position => XPathValue::Num(usize_num(position)),
        Func::Last => XPathValue::Num(usize_num(size)),
        Func::String => {
            let v = vals.first().cloned().unwrap_or_else(|| XPathValue::NodeSet(vec![ctx_node]));
            XPathValue::Str(v.string_value(doc, p))
        }
        Func::StringLength => {
            let s = match vals.first() {
                Some(v) => v.string_value(doc, p),
                None => node_string_value(doc, ctx_node, p),
            };
            XPathValue::Num(usize_num(s.len()))
        }
        Func::NormalizeSpace => {
            let s = match vals.first() {
                Some(v) => v.string_value(doc, p),
                None => node_string_value(doc, ctx_node, p),
            };
            p.alu(s.len().max(1) as u32);
            XPathValue::Str(normalize_space(&s))
        }
        Func::Concat => {
            let mut out = Vec::new();
            for v in &vals {
                out.extend_from_slice(&v.string_value(doc, p));
            }
            p.alu(out.len().max(1) as u32 / 4 + 1);
            XPathValue::Str(out)
        }
        Func::Substring => {
            let s = vals[0].string_value(doc, p);
            let start = vals[1].number_value(doc, p);
            let len = vals.get(2).map(|v| v.number_value(doc, p));
            p.alu(s.len().max(1) as u32 / 4 + 2);
            XPathValue::Str(xpath_substring(&s, start, len))
        }
        Func::SubstringBefore | Func::SubstringAfter => {
            let s = vals[0].string_value(doc, p);
            let needle = vals[1].string_value(doc, p);
            p.alu((s.len().max(1) as u32) * 2);
            let found = if needle.is_empty() {
                Some(0)
            } else {
                s.windows(needle.len()).position(|w| w == needle.as_slice())
            };
            let out = match (func, found) {
                (Func::SubstringBefore, Some(i)) => s[..i].to_vec(),
                (Func::SubstringAfter, Some(i)) => s[i + needle.len()..].to_vec(),
                _ => Vec::new(),
            };
            XPathValue::Str(out)
        }
        Func::Translate => {
            let s = vals[0].string_value(doc, p);
            let from = vals[1].string_value(doc, p);
            let to = vals[2].string_value(doc, p);
            p.alu((s.len().max(1) as u32) * 2);
            let mut out = Vec::with_capacity(s.len());
            for &b in &s {
                match from.iter().position(|&f| f == b) {
                    Some(i) => {
                        if let Some(&r) = to.get(i) {
                            out.push(r);
                        }
                        // Position beyond `to`: character is deleted.
                    }
                    None => out.push(b),
                }
            }
            XPathValue::Str(out)
        }
        Func::Name => {
            let node = match vals.first() {
                Some(XPathValue::NodeSet(ns)) => ns.first().copied(),
                _ => Some(ctx_node),
            };
            match node {
                Some(n) if n.is_attr() => {
                    XPathValue::Str(doc.name_bytes(doc.attr_rec(n).name).to_vec())
                }
                Some(n) if !n.is_document() => match doc.kind_t(n, p) {
                    NodeKind::Element(nm) => XPathValue::Str(doc.name_bytes(nm).to_vec()),
                    _ => XPathValue::Str(Vec::new()),
                },
                _ => XPathValue::Str(Vec::new()),
            }
        }
    }
}

fn contains_bytes(hay: &[u8], needle: &[u8]) -> bool {
    if needle.is_empty() {
        return true;
    }
    hay.windows(needle.len()).any(|w| w == needle)
}

fn normalize_space(s: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(s.len());
    let mut in_ws = true; // strip leading
    for &b in s {
        if b.is_ascii_whitespace() {
            if !in_ws {
                out.push(b' ');
                in_ws = true;
            }
        } else {
            out.push(b);
            in_ws = false;
        }
    }
    while out.last() == Some(&b' ') {
        out.pop();
    }
    out
}

/// XPath `=` / comparison semantics for the subset we support.
fn compare<P: Probe>(
    op: CmpOp,
    lhs: &XPathValue,
    rhs: &XPathValue,
    doc: &Document,
    p: &mut P,
) -> bool {
    use XPathValue::*;
    match (lhs, rhs) {
        // node-set vs node-set / string / number: existential semantics.
        (NodeSet(ns), other) => ns.iter().any(|&n| {
            let sv = node_string_value(doc, n, p);
            cmp_scalar(op, &Str(sv), other, doc, p)
        }),
        (other, NodeSet(ns)) => ns.iter().any(|&n| {
            let sv = node_string_value(doc, n, p);
            cmp_scalar(op, other, &Str(sv), doc, p)
        }),
        (a, b) => cmp_scalar(op, a, b, doc, p),
    }
}

fn cmp_scalar<P: Probe>(
    op: CmpOp,
    a: &XPathValue,
    b: &XPathValue,
    doc: &Document,
    p: &mut P,
) -> bool {
    use CmpOp::*;
    match op {
        Eq | Ne => {
            let eq = match (a, b) {
                (XPathValue::Num(x), _) | (_, XPathValue::Num(x)) => {
                    let other = if matches!(a, XPathValue::Num(_)) { b } else { a };
                    p.alu(2);
                    *x == other.number_value(doc, p)
                }
                (XPathValue::Bool(x), _) => *x == b.boolean_value(doc, p),
                (_, XPathValue::Bool(x)) => a.boolean_value(doc, p) == *x,
                _ => {
                    let sa = a.string_value(doc, p);
                    let sb = b.string_value(doc, p);
                    p.alu((sa.len().min(sb.len()).max(1) as u32).div_ceil(8) * 2 + 1);
                    sa == sb
                }
            };
            if matches!(op, Eq) {
                eq
            } else {
                !eq
            }
        }
        Lt | Le | Gt | Ge => {
            let x = a.number_value(doc, p);
            let y = b.number_value(doc, p);
            p.alu(2);
            match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                _ => unreachable!(),
            }
        }
    }
}

/// XPath 1.0 `substring()` semantics: 1-based positions, round() on the
/// arguments, NaN-propagating bounds (operating on bytes — adequate for
/// the ASCII-dominated AON message space).
fn xpath_substring(s: &[u8], start: f64, len: Option<f64>) -> Vec<u8> {
    let begin = start.round();
    let end = match len {
        Some(l) => begin + l.round(),
        None => f64::INFINITY,
    };
    if begin.is_nan() || end.is_nan() {
        return Vec::new();
    }
    s.iter()
        .enumerate()
        .filter(|(i, _)| {
            let pos = usize_num(*i + 1);
            pos >= begin && pos < end
        })
        .map(|(_, &b)| b)
        .collect()
}

/// Existential byte-equality used by [`super::XPath::string_equals`].
pub fn value_equals_bytes<P: Probe>(
    v: &XPathValue,
    doc: &Document,
    expect: &[u8],
    p: &mut P,
) -> bool {
    compare(CmpOp::Eq, v, &XPathValue::Str(expect.to_vec()), doc, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(2.0), "2");
        assert_eq!(format_number(2.5), "2.5");
        assert_eq!(format_number(f64::NAN), "NaN");
        assert_eq!(format_number(-3.0), "-3");
    }

    #[test]
    fn number_parsing() {
        assert_eq!(parse_number(b" 42 "), 42.0);
        assert!(parse_number(b"x").is_nan());
    }

    #[test]
    fn normalize_space_works() {
        assert_eq!(normalize_space(b"  a \t b\n c  "), b"a b c");
        assert_eq!(normalize_space(b""), b"");
        assert_eq!(normalize_space(b"   "), b"");
    }

    #[test]
    fn contains_bytes_works() {
        assert!(contains_bytes(b"hello", b"ell"));
        assert!(contains_bytes(b"hello", b""));
        assert!(!contains_bytes(b"hello", b"xyz"));
        assert!(!contains_bytes(b"ab", b"abc"));
    }
}
