//! XPath expression tokenizer.
//!
//! Compilation happens once per configured route at server start-up, so this
//! lexer is untraced — only *evaluation* contributes to the measured
//! workload, matching the paper's setup where XPath expressions are part of
//! the device configuration.

use crate::error::{XmlError, XmlErrorKind, XmlResult};

/// XPath tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// `/`
    Slash,
    /// `//`
    DoubleSlash,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `@`
    At,
    /// `*`
    Star,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `|`
    Pipe,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `and`
    And,
    /// `or`
    Or,
    /// `axis::` prefix (name before `::`)
    AxisName(String),
    /// A name (element name, function name).
    Name(String),
    /// A string literal.
    Literal(String),
    /// A number literal.
    Number(f64),
    /// End of expression.
    End,
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    // ':' is handled separately so `axis::test` and `prefix:name` both work.
    c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.')
}

/// Tokenize `src` completely.
pub fn tokenize(src: &str) -> XmlResult<Vec<Tok>> {
    let err = |off: usize| XmlError::at(XmlErrorKind::XPathSyntax, off);
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' => {
                if bytes.get(i + 1) == Some(&'/') {
                    out.push(Tok::DoubleSlash);
                    i += 2;
                } else {
                    out.push(Tok::Slash);
                    i += 1;
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&'.') {
                    out.push(Tok::DotDot);
                    i += 2;
                } else if bytes.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
                    // .5 style number
                    let (n, len) = scan_number(&bytes[i..]).ok_or_else(|| err(i))?;
                    out.push(Tok::Number(n));
                    i += len;
                } else {
                    out.push(Tok::Dot);
                    i += 1;
                }
            }
            '@' => {
                out.push(Tok::At);
                i += 1;
            }
            '*' => {
                out.push(Tok::Star);
                i += 1;
            }
            '[' => {
                out.push(Tok::LBracket);
                i += 1;
            }
            ']' => {
                out.push(Tok::RBracket);
                i += 1;
            }
            '(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                out.push(Tok::Comma);
                i += 1;
            }
            '|' => {
                out.push(Tok::Pipe);
                i += 1;
            }
            '=' => {
                out.push(Tok::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Tok::Ne);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Tok::Le);
                    i += 2;
                } else {
                    out.push(Tok::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Tok::Ge);
                    i += 2;
                } else {
                    out.push(Tok::Gt);
                    i += 1;
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(err(i));
                }
                out.push(Tok::Literal(bytes[start..j].iter().collect()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let (n, len) = scan_number(&bytes[i..]).ok_or_else(|| err(i))?;
                out.push(Tok::Number(n));
                i += len;
            }
            c if is_name_start(c) => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && is_name_char(bytes[j]) {
                    j += 1;
                }
                let mut name: String = bytes[start..j].iter().collect();
                // `axis::` spelling.
                if bytes.get(j) == Some(&':') && bytes.get(j + 1) == Some(&':') {
                    out.push(Tok::AxisName(name));
                    i = j + 2;
                } else if bytes.get(j) == Some(&':')
                    && bytes.get(j + 1).is_some_and(|&c| is_name_start(c))
                {
                    // `prefix:name` qualified name.
                    name.push(':');
                    let mut k = j + 1;
                    while k < bytes.len() && is_name_char(bytes[k]) {
                        k += 1;
                    }
                    name.extend(bytes[j + 1..k].iter());
                    out.push(Tok::Name(name));
                    i = k;
                } else {
                    match name.as_str() {
                        // `and`/`or` are operators only where an operator
                        // can appear; the parser disambiguates by position.
                        "and" => out.push(Tok::And),
                        "or" => out.push(Tok::Or),
                        _ => out.push(Tok::Name(name)),
                    }
                    i = j;
                }
            }
            _ => return Err(err(i)),
        }
    }
    out.push(Tok::End);
    Ok(out)
}

fn scan_number(chars: &[char]) -> Option<(f64, usize)> {
    let mut j = 0;
    while j < chars.len() && (chars[j].is_ascii_digit() || chars[j] == '.') {
        j += 1;
    }
    let s: String = chars[..j].iter().collect();
    s.parse().ok().map(|n| (n, j))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_paper_expression() {
        let toks = tokenize("//quantity/text()").unwrap();
        assert_eq!(
            toks,
            vec![
                Tok::DoubleSlash,
                Tok::Name("quantity".into()),
                Tok::Slash,
                Tok::Name("text".into()),
                Tok::LParen,
                Tok::RParen,
                Tok::End
            ]
        );
    }

    #[test]
    fn operators_and_literals() {
        let toks = tokenize("a[@x != '1' and b >= 2.5]").unwrap();
        assert!(toks.contains(&Tok::Ne));
        assert!(toks.contains(&Tok::And));
        assert!(toks.contains(&Tok::Ge));
        assert!(toks.contains(&Tok::Literal("1".into())));
        assert!(toks.contains(&Tok::Number(2.5)));
    }

    #[test]
    fn axis_spelling() {
        let toks = tokenize("descendant-or-self::node()").unwrap();
        assert_eq!(toks[0], Tok::AxisName("descendant-or-self".into()));
    }

    #[test]
    fn dots_and_numbers() {
        assert_eq!(tokenize(".").unwrap()[0], Tok::Dot);
        assert_eq!(tokenize("..").unwrap()[0], Tok::DotDot);
        assert_eq!(tokenize(".5").unwrap()[0], Tok::Number(0.5));
        assert_eq!(tokenize("42").unwrap()[0], Tok::Number(42.0));
    }

    #[test]
    fn bad_input_errors() {
        assert!(tokenize("'open").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("#").is_err());
    }
}
