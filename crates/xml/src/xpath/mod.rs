//! XPath 1.0 subset: compiler and evaluator.
//!
//! The paper's CBR use case evaluates `//quantity/text()` against each
//! incoming SOAP message (§3.2.1) and routes on whether the result equals
//! `"1"`. This module implements the XPath 1.0 subset an AON device's
//! content-based router needs:
//!
//! * location paths (absolute, relative, `//`), axes `child`,
//!   `descendant-or-self`, `descendant`, `self`, `parent`, `attribute`
//!   (`@` shorthand);
//! * node tests: names, `*`, `text()`, `node()`;
//! * predicates, including positional (`[2]`) and comparison predicates;
//! * operators `or`, `and`, `=`, `!=`, `<`, `<=`, `>`, `>=`, `|`;
//! * core functions: `count`, `contains`, `starts-with`, `not`, `true`,
//!   `false`, `position`, `last`, `string`, `string-length`,
//!   `normalize-space`, `name`.
//!
//! Expressions are compiled once (at simulated-server start-up) into a flat
//! step/expression program whose records live in the `STATIC` region; the
//! evaluator's reads of the compiled program and its traversal of the DOM
//! are traced, so CBR's instruction stream has the real mix of pointer
//! chasing (DOM), warm static data (compiled path), and byte comparisons.

mod ast;
pub mod compile;
mod eval;
mod lexer;
mod parser;

pub use ast::{Axis, Expr, NodeTest, Step};
pub use compile::CompiledPath;
pub use eval::XPathValue;

use crate::dom::{Document, NodeId};
use crate::error::XmlResult;
use aon_trace::Probe;

/// A compiled XPath expression.
#[derive(Debug, Clone)]
pub struct XPath {
    /// Original source text.
    source: String,
    /// Root of the expression tree.
    expr: Expr,
    /// Number of AST records (for STATIC-region layout / tracing).
    record_count: u32,
}

impl XPath {
    /// Compile an expression.
    pub fn compile(source: &str) -> XmlResult<XPath> {
        let expr = parser::parse(source)?;
        let record_count = expr.count_records();
        Ok(XPath { source: source.to_string(), expr, record_count })
    }

    /// The source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Number of compiled records (steps + expression nodes).
    pub fn record_count(&self) -> u32 {
        self.record_count
    }

    /// The compiled expression tree.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// Evaluate against `doc` with the root node as context.
    pub fn eval<P: Probe>(&self, doc: &Document, p: &mut P) -> XmlResult<XPathValue> {
        let root = doc.root()?;
        Ok(eval::eval_expr(&self.expr, doc, root, p))
    }

    /// Evaluate and coerce to a node-set (empty for non-node-set results).
    pub fn select<P: Probe>(&self, doc: &Document, p: &mut P) -> XmlResult<Vec<NodeId>> {
        Ok(match self.eval(doc, p)? {
            XPathValue::NodeSet(ns) => ns,
            _ => Vec::new(),
        })
    }

    /// The CBR router's question: does the expression's string-value equal
    /// `expect`? (For node-sets, XPath `=` semantics: true if *any* node's
    /// string-value matches.)
    pub fn string_equals<P: Probe>(
        &self,
        doc: &Document,
        expect: &[u8],
        p: &mut P,
    ) -> XmlResult<bool> {
        let v = self.eval(doc, p)?;
        Ok(eval::value_equals_bytes(&v, doc, expect, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::TBuf;
    use crate::parser::parse_document;
    use aon_trace::NullProbe;

    fn doc(input: &[u8]) -> Document {
        parse_document(TBuf::msg(input), &mut NullProbe).unwrap()
    }

    const PO: &[u8] = br#"<order id="7">
        <item><name>bolt</name><quantity>1</quantity></item>
        <item><name>nut</name><quantity>25</quantity></item>
        <note lang="en">rush</note>
    </order>"#;

    #[test]
    fn paper_expression_matches() {
        let d = doc(PO);
        let xp = XPath::compile("//quantity/text()").unwrap();
        assert!(xp.string_equals(&d, b"1", &mut NullProbe).unwrap());
        assert!(!xp.string_equals(&d, b"99", &mut NullProbe).unwrap());
    }

    #[test]
    fn select_counts_nodes() {
        let d = doc(PO);
        let xp = XPath::compile("//item").unwrap();
        assert_eq!(xp.select(&d, &mut NullProbe).unwrap().len(), 2);
        let xp = XPath::compile("//quantity").unwrap();
        assert_eq!(xp.select(&d, &mut NullProbe).unwrap().len(), 2);
    }

    #[test]
    fn child_axis_paths() {
        let d = doc(PO);
        assert_eq!(
            XPath::compile("/order/item").unwrap().select(&d, &mut NullProbe).unwrap().len(),
            2
        );
        assert_eq!(
            XPath::compile("item/name").unwrap().select(&d, &mut NullProbe).unwrap().len(),
            2
        );
        assert_eq!(
            XPath::compile("/wrong/item").unwrap().select(&d, &mut NullProbe).unwrap().len(),
            0
        );
    }

    #[test]
    fn wildcard_and_node_tests() {
        let d = doc(PO);
        assert_eq!(
            XPath::compile("/order/*").unwrap().select(&d, &mut NullProbe).unwrap().len(),
            3
        );
        // text() under note
        let xp = XPath::compile("/order/note/text()").unwrap();
        let v = xp.eval(&d, &mut NullProbe).unwrap();
        assert_eq!(v.string_value(&d, &mut NullProbe), b"rush");
    }

    #[test]
    fn positional_predicate() {
        let d = doc(PO);
        let xp = XPath::compile("//item[2]/name/text()").unwrap();
        let v = xp.eval(&d, &mut NullProbe).unwrap();
        assert_eq!(v.string_value(&d, &mut NullProbe), b"nut");
    }

    #[test]
    fn comparison_predicate() {
        let d = doc(PO);
        let xp = XPath::compile("//item[quantity = '25']/name/text()").unwrap();
        let v = xp.eval(&d, &mut NullProbe).unwrap();
        assert_eq!(v.string_value(&d, &mut NullProbe), b"nut");
    }

    #[test]
    fn numeric_comparison_predicate() {
        let d = doc(PO);
        let xp = XPath::compile("//item[quantity > 10]/name/text()").unwrap();
        let v = xp.eval(&d, &mut NullProbe).unwrap();
        assert_eq!(v.string_value(&d, &mut NullProbe), b"nut");
    }

    #[test]
    fn attribute_axis() {
        let d = doc(PO);
        let xp = XPath::compile("/order/@id").unwrap();
        let v = xp.eval(&d, &mut NullProbe).unwrap();
        assert_eq!(v.string_value(&d, &mut NullProbe), b"7");
        let xp = XPath::compile("//note[@lang='en']").unwrap();
        assert_eq!(xp.select(&d, &mut NullProbe).unwrap().len(), 1);
    }

    #[test]
    fn functions() {
        let d = doc(PO);
        let count = XPath::compile("count(//item)").unwrap().eval(&d, &mut NullProbe).unwrap();
        assert_eq!(count.number_value(&d, &mut NullProbe), 2.0);
        let c = XPath::compile("contains(//note/text(), 'us')").unwrap();
        assert!(c.eval(&d, &mut NullProbe).unwrap().boolean_value(&d, &mut NullProbe));
        let sw = XPath::compile("starts-with(//note/text(), 'ru')").unwrap();
        assert!(sw.eval(&d, &mut NullProbe).unwrap().boolean_value(&d, &mut NullProbe));
        let n = XPath::compile("not(//missing)").unwrap();
        assert!(n.eval(&d, &mut NullProbe).unwrap().boolean_value(&d, &mut NullProbe));
    }

    #[test]
    fn boolean_operators() {
        let d = doc(PO);
        let xp = XPath::compile("//item[quantity='1' or quantity='25']").unwrap();
        assert_eq!(xp.select(&d, &mut NullProbe).unwrap().len(), 2);
        let xp = XPath::compile("//item[quantity='1' and name='bolt']").unwrap();
        assert_eq!(xp.select(&d, &mut NullProbe).unwrap().len(), 1);
    }

    #[test]
    fn union_operator() {
        let d = doc(PO);
        let xp = XPath::compile("//name | //note").unwrap();
        assert_eq!(xp.select(&d, &mut NullProbe).unwrap().len(), 3);
    }

    #[test]
    fn parent_and_self_axes() {
        let d = doc(PO);
        let xp = XPath::compile("//quantity/..").unwrap();
        assert_eq!(xp.select(&d, &mut NullProbe).unwrap().len(), 2);
        let xp = XPath::compile("/order/.").unwrap();
        assert_eq!(xp.select(&d, &mut NullProbe).unwrap().len(), 1);
    }

    #[test]
    fn syntax_errors() {
        for bad in ["//", "foo[", "foo]", "count(", "@", "foo/", "1 +", "'unterminated"] {
            assert!(XPath::compile(bad).is_err(), "expected error for {bad:?}");
        }
    }

    #[test]
    fn descendant_or_self_matches_root_itself() {
        let d = doc(b"<quantity>5</quantity>");
        let xp = XPath::compile("//quantity").unwrap();
        assert_eq!(xp.select(&d, &mut NullProbe).unwrap().len(), 1);
    }

    #[test]
    fn document_order_of_descendant_results() {
        let d = doc(b"<r><a><x>1</x></a><x>2</x></r>");
        let xp = XPath::compile("//x").unwrap();
        let ns = xp.select(&d, &mut NullProbe).unwrap();
        assert_eq!(ns.len(), 2);
        assert!(ns[0] < ns[1], "results must be in document order");
    }
}
