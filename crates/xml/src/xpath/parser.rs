//! Recursive-descent XPath parser (tokens → [`Expr`]).

use super::ast::{Axis, CmpOp, Expr, Func, NodeTest, Step};
use super::lexer::{tokenize, Tok};
use crate::error::{XmlError, XmlErrorKind, XmlResult};

/// Parse an XPath expression.
pub fn parse(src: &str) -> XmlResult<Expr> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.or_expr()?;
    p.expect_end()?;
    Ok(e)
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn err(&self) -> XmlError {
        XmlError::at(XmlErrorKind::XPathSyntax, self.pos)
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> XmlResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err())
        }
    }

    fn expect_end(&self) -> XmlResult<()> {
        if *self.peek() == Tok::End {
            Ok(())
        } else {
            Err(self.err())
        }
    }

    // or_expr := and_expr ('or' and_expr)*
    fn or_expr(&mut self) -> XmlResult<Expr> {
        let mut e = self.and_expr()?;
        while self.eat(&Tok::Or) {
            let rhs = self.and_expr()?;
            e = Expr::Or(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    // and_expr := cmp_expr ('and' cmp_expr)*
    fn and_expr(&mut self) -> XmlResult<Expr> {
        let mut e = self.cmp_expr()?;
        while self.eat(&Tok::And) {
            let rhs = self.cmp_expr()?;
            e = Expr::And(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    // cmp_expr := union_expr (op union_expr)?
    fn cmp_expr(&mut self) -> XmlResult<Expr> {
        let lhs = self.union_expr()?;
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.union_expr()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    // union_expr := primary ('|' primary)*
    fn union_expr(&mut self) -> XmlResult<Expr> {
        let mut e = self.primary()?;
        while self.eat(&Tok::Pipe) {
            let rhs = self.primary()?;
            e = Expr::Union(Box::new(e), Box::new(rhs));
        }
        Ok(e)
    }

    fn primary(&mut self) -> XmlResult<Expr> {
        match self.peek().clone() {
            Tok::Literal(s) => {
                self.bump();
                Ok(Expr::Literal(s.into_bytes()))
            }
            Tok::Number(n) => {
                self.bump();
                Ok(Expr::Number(n))
            }
            Tok::LParen => {
                self.bump();
                let e = self.or_expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Name(name) if self.toks.get(self.pos + 1) == Some(&Tok::LParen) => {
                // Function call — unless it's the node-test spelling
                // `text()` / `node()`, which location_path handles.
                if name == "text" || name == "node" {
                    self.location_path()
                } else {
                    self.bump(); // name
                    self.bump(); // (
                    let func = Func::by_name(&name).ok_or_else(|| self.err())?;
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.or_expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(&Tok::RParen)?;
                    }
                    let (min, max) = func.arity();
                    if args.len() < min || args.len() > max {
                        return Err(self.err());
                    }
                    Ok(Expr::Call(func, args))
                }
            }
            Tok::Slash
            | Tok::DoubleSlash
            | Tok::Dot
            | Tok::DotDot
            | Tok::At
            | Tok::Star
            | Tok::Name(_)
            | Tok::AxisName(_) => self.location_path(),
            _ => Err(self.err()),
        }
    }

    // location_path := '/' steps? | '//' steps | steps
    fn location_path(&mut self) -> XmlResult<Expr> {
        let mut steps = Vec::new();
        let absolute = matches!(self.peek(), Tok::Slash | Tok::DoubleSlash);
        if self.eat(&Tok::Slash) {
            // "/" alone selects the root; allow trailing end or continue.
            if self.step_starts() {
                steps.push(self.step()?);
            } else if steps.is_empty() && !self.path_continues() {
                return Ok(Expr::Path { absolute: true, steps });
            } else {
                return Err(self.err());
            }
        } else if self.eat(&Tok::DoubleSlash) {
            steps.push(Step {
                axis: Axis::DescendantOrSelf,
                test: NodeTest::AnyNode,
                predicates: vec![],
            });
            if !self.step_starts() {
                return Err(self.err());
            }
            steps.push(self.step()?);
        } else {
            steps.push(self.step()?);
        }
        loop {
            if self.eat(&Tok::Slash) {
                if !self.step_starts() {
                    return Err(self.err());
                }
                steps.push(self.step()?);
            } else if self.eat(&Tok::DoubleSlash) {
                steps.push(Step {
                    axis: Axis::DescendantOrSelf,
                    test: NodeTest::AnyNode,
                    predicates: vec![],
                });
                if !self.step_starts() {
                    return Err(self.err());
                }
                steps.push(self.step()?);
            } else {
                break;
            }
        }
        Ok(Expr::Path { absolute, steps })
    }

    fn step_starts(&self) -> bool {
        matches!(
            self.peek(),
            Tok::Name(_) | Tok::Star | Tok::At | Tok::Dot | Tok::DotDot | Tok::AxisName(_)
        )
    }

    fn path_continues(&self) -> bool {
        self.step_starts() || matches!(self.peek(), Tok::Slash | Tok::DoubleSlash)
    }

    // step := '@'? node_test predicate* | '.' | '..' | axis '::' node_test predicate*
    fn step(&mut self) -> XmlResult<Step> {
        if self.eat(&Tok::Dot) {
            return Ok(Step { axis: Axis::SelfAxis, test: NodeTest::AnyNode, predicates: vec![] });
        }
        if self.eat(&Tok::DotDot) {
            return Ok(Step { axis: Axis::Parent, test: NodeTest::AnyNode, predicates: vec![] });
        }
        let axis = if self.eat(&Tok::At) {
            Axis::Attribute
        } else if let Tok::AxisName(name) = self.peek().clone() {
            self.bump();
            match name.as_str() {
                "child" => Axis::Child,
                "descendant" => Axis::Descendant,
                "descendant-or-self" => Axis::DescendantOrSelf,
                "self" => Axis::SelfAxis,
                "parent" => Axis::Parent,
                "attribute" => Axis::Attribute,
                _ => return Err(self.err()),
            }
        } else {
            Axis::Child
        };
        let test = match self.bump() {
            Tok::Star => NodeTest::AnyName,
            Tok::Name(name) => {
                if self.peek() == &Tok::LParen {
                    self.bump();
                    self.expect(&Tok::RParen)?;
                    match name.as_str() {
                        "text" => NodeTest::Text,
                        "node" => NodeTest::AnyNode,
                        _ => return Err(self.err()),
                    }
                } else {
                    NodeTest::Name(name.into_bytes())
                }
            }
            _ => return Err(self.err()),
        };
        let mut predicates = Vec::new();
        while self.eat(&Tok::LBracket) {
            predicates.push(self.or_expr()?);
            self.expect(&Tok::RBracket)?;
        }
        Ok(Step { axis, test, predicates })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_expression() {
        let e = parse("//quantity/text()").unwrap();
        match e {
            Expr::Path { absolute, steps } => {
                assert!(absolute);
                assert_eq!(steps.len(), 3);
                assert_eq!(steps[0].axis, Axis::DescendantOrSelf);
                assert_eq!(steps[1].test, NodeTest::Name(b"quantity".to_vec()));
                assert_eq!(steps[2].test, NodeTest::Text);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_predicates() {
        let e = parse("item[quantity = '1'][2]").unwrap();
        match e {
            Expr::Path { steps, .. } => {
                assert_eq!(steps[0].predicates.len(), 2);
                assert!(matches!(steps[0].predicates[1], Expr::Number(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_explicit_axes() {
        let e = parse("child::a/descendant::b/attribute::c").unwrap();
        match e {
            Expr::Path { steps, .. } => {
                assert_eq!(steps[0].axis, Axis::Child);
                assert_eq!(steps[1].axis, Axis::Descendant);
                assert_eq!(steps[2].axis, Axis::Attribute);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn root_only_path() {
        let e = parse("/").unwrap();
        assert!(matches!(e, Expr::Path { absolute: true, ref steps } if steps.is_empty()));
    }

    #[test]
    fn operator_precedence() {
        // or binds looser than and: a='1' or b='2' and c='3'
        let e = parse("a='1' or b='2' and c='3'").unwrap();
        assert!(matches!(e, Expr::Or(..)));
    }

    #[test]
    fn function_arity_checked() {
        assert!(parse("count()").is_err());
        assert!(parse("count(a, b)").is_err());
        assert!(parse("contains(a)").is_err());
        assert!(parse("true(1)").is_err());
        assert!(parse("unknown-func(a)").is_err());
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse("a b").is_err());
        assert!(parse("a)").is_err());
    }

    #[test]
    fn bad_axis_rejected() {
        assert!(parse("following::a").is_err());
    }
}
