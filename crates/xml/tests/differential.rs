//! Differential equivalence suite: the fast serving-path engines against
//! the traced byte-at-a-time references.
//!
//! The live server runs [`Lexer::next_token_fast`], [`parse_document_lazy`]
//! and the compiled automata; the simulator's counter tables come from the
//! traced twins. The twin-path invariant — identical tokens, spans, DOM
//! shape, decoded values, and errors (kind *and* offset) on every input —
//! is what lets the fast path exist without touching a single simulated
//! number. This suite pins that invariant over the sample corpus,
//! handwritten adversarial inputs, and deterministic byte-level fuzzing.

use aon_trace::NullProbe;
use aon_xml::dom::{Document, NodeId, NodeKind};
use aon_xml::error::XmlError;
use aon_xml::input::TBuf;
use aon_xml::lazy::{parse_document_lazy, LazyDoc, LazyId, LazyKind};
use aon_xml::lexer::{decode_text_fast, Lexer, Span, Token};
use aon_xml::parser::parse_document;
use aon_xml::{samples, soap};

/// Tokenize to completion on the traced path (under `NullProbe`).
fn lex_traced(input: &[u8]) -> (Vec<Token>, Option<XmlError>) {
    let mut lx = Lexer::new(TBuf::msg(input));
    let mut toks = Vec::new();
    loop {
        match lx.next_token(&mut NullProbe) {
            Ok(Token::Eof) => return (toks, None),
            Ok(t) => toks.push(t),
            Err(e) => return (toks, Some(e)),
        }
    }
}

/// Tokenize to completion on the fast path.
fn lex_fast(input: &[u8]) -> (Vec<Token>, Option<XmlError>) {
    let mut lx = Lexer::new(TBuf::msg(input));
    let mut toks = Vec::new();
    loop {
        match lx.next_token_fast() {
            Ok(Token::Eof) => return (toks, None),
            Ok(t) => toks.push(t),
            Err(e) => return (toks, Some(e)),
        }
    }
}

/// Assert the two lexers agree exactly on `input`: same token sequence
/// (including every span) and the same error kind at the same offset.
fn assert_lexers_agree(input: &[u8]) {
    let (traced, te) = lex_traced(input);
    let (fast, fe) = lex_fast(input);
    assert_eq!(traced, fast, "token divergence on {:?}", String::from_utf8_lossy(input));
    assert_eq!(te, fe, "error divergence on {:?}", String::from_utf8_lossy(input));
}

/// Walk the eager and lazy documents in lockstep, comparing node kinds,
/// names, decoded text, and attributes.
fn assert_same_shape(eager: &Document, lazy: &LazyDoc<'_>) {
    let er = eager.root().ok();
    let lr = lazy.root().ok();
    assert_eq!(er.is_some(), lr.is_some(), "root presence differs");
    if let (Some(er), Some(lr)) = (er, lr) {
        assert_nodes_equal(eager, er, lazy, lr);
    }
}

fn assert_nodes_equal(ed: &Document, en: NodeId, ld: &LazyDoc<'_>, ln: LazyId) {
    match (ed.kind_t(en, &mut NullProbe), ld.kind(ln)) {
        (NodeKind::Element(enm), LazyKind::Element(lnm)) => {
            assert_eq!(ed.name_bytes(enm), ld.name_bytes(lnm), "element name differs");
            let ea = ed.attrs_t(en, &mut NullProbe);
            let la = ld.attrs(ln);
            assert_eq!(ea.len(), la.len(), "attr count differs on <{:?}>", ed.name_bytes(enm));
            for (e, l) in ea.iter().zip(la) {
                assert_eq!(ed.name_bytes(e.name), ld.name_bytes(l.name), "attr name differs");
                assert_eq!(ed.str_bytes(e.value), ld.value(l.value), "attr value differs");
            }
        }
        (NodeKind::Text(sv), LazyKind::Text(v)) => {
            assert_eq!(ed.str_bytes(sv), ld.value(v), "text content differs");
        }
        (NodeKind::Comment, LazyKind::Comment) => {}
        (NodeKind::Pi(st), LazyKind::Pi(v)) => {
            assert_eq!(ed.str_bytes(st), ld.value(v), "PI target differs");
        }
        (ek, lk) => panic!("node kind differs: eager {ek:?} vs lazy {lk:?}"),
    }
    let mut ec = ed.first_child_t(en, &mut NullProbe);
    let mut lc = ld.first_child(ln);
    loop {
        match (ec, lc) {
            (Some(e), Some(l)) => {
                assert_nodes_equal(ed, e, ld, l);
                ec = ed.next_sibling_t(e, &mut NullProbe);
                lc = ld.next_sibling(l);
            }
            (None, None) => return,
            (e, l) => panic!("child count differs: eager has {:?}, lazy has {:?}", e, l),
        }
    }
}

/// Assert the eager and lazy parsers agree on `input`: same error (kind
/// and offset) on rejection, same tree shape on acceptance.
fn assert_parsers_agree(input: &[u8]) {
    let eager = parse_document(TBuf::msg(input), &mut NullProbe);
    let lazy = parse_document_lazy(input);
    match (&eager, &lazy) {
        (Ok(ed), Ok(ld)) => assert_same_shape(ed, ld),
        (Err(ee), Err(le)) => {
            assert_eq!(ee, le, "parse error divergence on {:?}", String::from_utf8_lossy(input));
        }
        _ => panic!(
            "accept/reject divergence on {:?}: eager {:?}, lazy {:?}",
            String::from_utf8_lossy(input),
            eager.as_ref().map(|_| ()),
            lazy.as_ref().map(|_| ()),
        ),
    }
}

fn assert_all_agree(input: &[u8]) {
    assert_lexers_agree(input);
    assert_parsers_agree(input);
}

/// The well-formed side of the corpus: samples and envelope variants.
fn well_formed_corpus() -> Vec<Vec<u8>> {
    let mut v: Vec<Vec<u8>> = vec![
        samples::PURCHASE_ORDER_OK.to_vec(),
        samples::PURCHASE_ORDER_BAD.to_vec(),
        samples::SOAP_CBR_MATCH.to_vec(),
        soap::wrap_envelope(samples::PURCHASE_ORDER_OK),
        b"<r/>".to_vec(),
        b"<r a=\"1\" b=\"two\"><c/><c>x</c>tail</r>".to_vec(),
        b"<?xml version=\"1.0\"?><!-- c --><r><?pi data?><![CDATA[<raw>&amp;]]></r>".to_vec(),
        b"<r>&lt;&gt;&amp;&quot;&apos;&#65;&#x42;</r>".to_vec(),
        b"<r a=\"&amp;&#x20;\">mixed &amp; text</r>".to_vec(),
        b"<ns:r xmlns:ns=\"u\"><ns:c ns:a=\"v\"/></ns:r>".to_vec(),
        "<r>\u{1F600} caf\u{e9} \u{65E5}\u{672C}</r>".as_bytes().to_vec(),
        "<caf\u{e9} attr\u{e9}=\"v\"><\u{65E5}\u{672C}/></caf\u{e9}>".as_bytes().to_vec(),
        b"<r><![CDATA[a]]><![CDATA[b]]>c</r>".to_vec(),
        b"<r  \t\r\n a = \"s p\" >  <c\t/>\r\n</r>".to_vec(),
    ];
    // A deep and a wide document (recursion/arena stress).
    let mut deep = Vec::new();
    for _ in 0..64 {
        deep.extend_from_slice(b"<d>");
    }
    deep.extend_from_slice(b"x");
    for _ in 0..64 {
        deep.extend_from_slice(b"</d>");
    }
    v.push(deep);
    let mut wide = b"<w>".to_vec();
    for i in 0..200 {
        wide.extend_from_slice(format!("<c n=\"{i}\">{i}</c>").as_bytes());
    }
    wide.extend_from_slice(b"</w>");
    v.push(wide);
    v
}

/// Handwritten adversarial inputs: every rejection class the lexer has,
/// plus near-misses that must be accepted.
fn adversarial_corpus() -> Vec<Vec<u8>> {
    [
        &b""[..],
        b" \t\n",
        b"<",
        b"<>",
        b"< r/>",
        b"<r",
        b"<r/",
        b"<r/>trailing<",
        b"<r></q>",
        b"<r></r",
        b"<r><c></r></c>",
        b"<r a>",
        b"<r a=>",
        b"<r a='v`>",
        b"<r a=\"v>",
        b"<r a=\"v\" a=\"w\"/>",
        b"<r>&unknown;</r>",
        b"<r>&amp</r>",
        b"<r>&#xZZ;</r>",
        b"<r>&#; </r>",
        b"<r>&;</r>",
        b"<!-- unterminated",
        b"<!--a--->",
        b"<r><!-- -- --></r>",
        b"<![CDATA[loose]]>",
        b"<r><![CDATA[unterminated</r>",
        b"<?pi unterminated",
        b"<?xml?><?xml?>",
        b"<!DOCTYPE r><r/>",
        b"<!DOCTYPE",
        b"text only",
        b"</r>",
        b"<r/><q/>",
        b"<r>]]></r>",
        b"\xEF\xBB\xBF<r/>", // BOM
        b"<r>\x00</r>",
        b"<r a=\"\x01\"/>",
    ]
    .iter()
    .map(|s| s.to_vec())
    .collect()
}

#[test]
fn lexers_and_parsers_agree_on_well_formed_corpus() {
    for input in well_formed_corpus() {
        // These must actually parse — a vacuous both-reject pass would
        // hide a broken corpus.
        assert!(
            parse_document(TBuf::msg(&input), &mut NullProbe).is_ok(),
            "corpus input no longer parses: {:?}",
            String::from_utf8_lossy(&input)
        );
        assert_all_agree(&input);
    }
}

#[test]
fn lexers_and_parsers_agree_on_adversarial_corpus() {
    for input in adversarial_corpus() {
        assert_all_agree(&input);
    }
}

/// Satellite regression: UTF-8 handling inside names. The scalar lexer
/// historically accepted any `>= 0x80` byte as a name byte, letting
/// ill-formed UTF-8 (stray continuations, truncated or overlong
/// sequences, surrogates) through as element/attribute names even though
/// the document-level UTF-8 gate would catch it only on some paths. Both
/// lexers now validate name bytes as UTF-8 and must agree exactly.
#[test]
fn utf8_name_boundary_cases_agree_and_reject() {
    let accepted: &[&[u8]] = &[
        "<caf\u{e9}/>".as_bytes(),         // 2-byte sequence
        "<\u{65E5}\u{672C}/>".as_bytes(),  // 3-byte sequences
        "<r \u{1F600}=\"v\"/>".as_bytes(), // 4-byte sequence in attr name
        "<\u{e9}:\u{e9}/>".as_bytes(),     // multibyte around ':'
    ];
    for input in accepted {
        assert!(
            parse_document(TBuf::msg(input), &mut NullProbe).is_ok(),
            "well-formed UTF-8 name rejected: {:?}",
            String::from_utf8_lossy(input)
        );
        assert_all_agree(input);
    }
    let rejected: &[&[u8]] = &[
        b"<a\x80/>",            // lone continuation inside a name
        b"<\xC3/>",             // truncated 2-byte sequence
        b"<\xC3>x</\xC3>",      // truncated sequence, non-empty element
        b"<\xC0\xAF/>",         // overlong encoding
        b"<\xED\xA0\x80/>",     // UTF-16 surrogate
        b"<\xF5\x80\x80\x80/>", // beyond U+10FFFF
        b"<\xFF\xFE/>",         // not UTF-8 at all
        b"<r \xC3=\"v\"/>",     // truncated sequence in attr name
        b"<r><\xE2\x82/></r>",  // truncated 3-byte sequence, nested
    ];
    for input in rejected {
        assert!(
            parse_document(TBuf::msg(input), &mut NullProbe).is_err(),
            "ill-formed UTF-8 name accepted by the traced path: {input:?}"
        );
        assert!(parse_document_lazy(input).is_err(), "ill-formed UTF-8 name accepted: {input:?}");
        assert_all_agree(input);
    }
}

/// Deterministic xorshift64* generator — the suite must not depend on a
/// rand crate or wall-clock seeding.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `0..n`.
    fn below(&mut self, n: usize) -> usize {
        usize::try_from(self.next() % u64::try_from(n.max(1)).expect("usize fits u64"))
            .expect("remainder fits usize")
    }
}

#[test]
fn fuzzed_mutations_of_samples_agree() {
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    let bases: Vec<Vec<u8>> = vec![
        samples::SOAP_CBR_MATCH.to_vec(),
        samples::PURCHASE_ORDER_OK.to_vec(),
        b"<r a=\"&amp;1\"><c>text &lt;here&gt;</c><!--x--><![CDATA[d]]></r>".to_vec(),
    ];
    for base in &bases {
        for _ in 0..400 {
            let mut m = base.clone();
            // 1-3 point mutations: overwrite, insert, or delete a byte.
            for _ in 0..(rng.next() % 3 + 1) {
                let i = rng.below(m.len());
                match rng.next() % 3 {
                    0 => m[i] = (rng.next() & 0xFF) as u8,
                    1 => m.insert(i, (rng.next() & 0xFF) as u8),
                    _ => {
                        m.remove(i);
                    }
                }
            }
            assert_all_agree(&m);
        }
    }
}

#[test]
fn fuzzed_markup_soup_agrees() {
    // Biased soup: mostly structural bytes so inputs reach deep into the
    // lexer instead of failing on the first byte.
    const ALPHA: &[u8] = b"<>/=\"'&;ab1 \t\n!?-[]CDATA#x\xC3\xA9\x80\xFF";
    let mut rng = XorShift(0xDEAD_BEEF_CAFE_F00D);
    for _ in 0..2000 {
        let len = rng.below(64);
        let input: Vec<u8> = (0..len).map(|_| ALPHA[rng.below(ALPHA.len())]).collect();
        assert_all_agree(&input);
    }
}

/// Entity decoding: the lazy DOM materializes values with
/// [`decode_text_fast`]; the traced DOM decodes during parsing. Values
/// compared node-by-node in the shape walk above already cover documents;
/// this pins the span-level decoder on standalone runs.
#[test]
fn text_decoders_agree_on_entity_runs() {
    let runs: &[&[u8]] = &[
        b"plain",
        b"&amp;&lt;&gt;&quot;&apos;",
        b"a&#65;b&#x42;c&#x1F600;d",
        b"&amp;amp;",
        b"mixed &amp; text with &#xe9; refs",
    ];
    for run in runs {
        let doc = format!("<r>{}</r>", String::from_utf8_lossy(run));
        assert_all_agree(doc.as_bytes());
    }
}

#[test]
fn lazy_spans_materialize_identical_values_on_demand() {
    // Entity-free text borrows the input; entity-bearing text decodes on
    // first access. Both must equal the eager DOM's stored bytes.
    let input = b"<r><plain>no entities here</plain><ent>a &amp; b</ent></r>";
    let eager = parse_document(TBuf::msg(input), &mut NullProbe).unwrap();
    let lazy = parse_document_lazy(input).unwrap();
    assert_same_shape(&eager, &lazy);
    // Repeated access hits the memo and stays identical.
    let root = lazy.root().unwrap();
    let mut texts = Vec::new();
    let mut cur = lazy.first_child(root);
    while let Some(c) = cur {
        texts.push(lazy.text_of(c));
        cur = lazy.next_sibling(c);
    }
    assert_eq!(texts, vec![b"no entities here".to_vec(), b"a & b".to_vec()]);
    let root_e = eager.root().unwrap();
    let mut ec = eager.first_child_t(root_e, &mut NullProbe);
    let mut etexts = Vec::new();
    while let Some(c) = ec {
        etexts.push(eager.text_of_t(c, &mut NullProbe));
        ec = eager.next_sibling_t(c, &mut NullProbe);
    }
    assert_eq!(texts, etexts);
}

#[test]
fn decode_text_fast_rejects_what_parsing_rejected() {
    // decode_text_fast is only called on spans validated at parse time,
    // but its error behavior still mirrors the traced decoder.
    let input = b"x&nope;y";
    let span = Span { start: 0, end: input.len() };
    let mut out = Vec::new();
    assert!(decode_text_fast(input, span, &mut out).is_err());
}
