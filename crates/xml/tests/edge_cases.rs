//! Edge-case regression tests for the XML stack: inputs that historically
//! break hand-written parsers.

use aon_trace::NullProbe;
use aon_xml::error::XmlErrorKind;
use aon_xml::input::TBuf;
use aon_xml::parser::{parse_document, parse_with_options, ParseOptions};
use aon_xml::serialize::serialize_document;

fn parse(input: &[u8]) -> Result<aon_xml::Document, aon_xml::XmlError> {
    parse_document(TBuf::msg(input), &mut NullProbe)
}

#[test]
fn deeply_nested_but_within_limit() {
    let mut s = Vec::new();
    for _ in 0..200 {
        s.extend_from_slice(b"<e>");
    }
    for _ in 0..200 {
        s.extend_from_slice(b"</e>");
    }
    let doc = parse(&s).expect("200 levels is inside the default limit");
    assert_eq!(doc.node_count(), 200);
}

#[test]
fn single_byte_inputs() {
    for b in 0u8..=255 {
        // Must never panic; almost everything errors.
        let _ = parse(&[b]);
    }
}

#[test]
fn tag_name_edge_characters() {
    assert!(parse(b"<a-b.c_d/>").is_ok());
    assert!(parse(b"<_x/>").is_ok());
    assert!(parse(b"<ns:elem/>").is_ok());
    assert!(parse(b"<1bad/>").is_err());
    assert!(parse(b"<-bad/>").is_err());
}

#[test]
fn utf8_names_and_text() {
    let doc = parse("<célé>héllo ☃</célé>".as_bytes()).unwrap();
    let root = doc.root().unwrap();
    assert_eq!(doc.text_of_t(root, &mut NullProbe), "héllo ☃".as_bytes());
}

#[test]
fn cdata_with_tricky_terminators() {
    let doc = parse(b"<a><![CDATA[ ]] ]]> ]]></a>");
    // The CDATA ends at the FIRST `]]>`; the trailing ` ]]>` is then text
    // containing `]]>`, which we accept leniently (many parsers do).
    assert!(doc.is_ok());
    let doc = doc.unwrap();
    let root = doc.root().unwrap();
    let text = doc.text_of_t(root, &mut NullProbe);
    assert!(text.starts_with(b" ]] "));
}

#[test]
fn comments_with_dashes() {
    assert!(parse(b"<a><!-- - -- --></a>").is_err(), "-- inside a comment is invalid");
    assert!(parse(b"<a><!-- - - --></a>").is_ok());
    assert!(parse(b"<a><!----></a>").is_ok(), "empty comment");
}

#[test]
fn attribute_quote_variants() {
    let doc = parse(br#"<a x="it's" y='say "hi"'/>"#).unwrap();
    let root = doc.root().unwrap();
    let x = doc.attr_value_t(root, b"x", &mut NullProbe).unwrap();
    assert_eq!(doc.str_bytes(x), b"it's");
    let y = doc.attr_value_t(root, b"y", &mut NullProbe).unwrap();
    assert_eq!(doc.str_bytes(y), br#"say "hi""#);
}

#[test]
fn error_offsets_are_meaningful() {
    let err = parse(b"<root><bad").unwrap_err();
    assert!(err.offset >= 6, "error near the malformed tag: {err}");
    let err = parse(b"<a>&bogus;</a>").unwrap_err();
    assert_eq!(err.kind, XmlErrorKind::BadEntity);
    assert_eq!(err.offset, 3);
}

#[test]
fn keep_comments_option() {
    let doc = parse_with_options(
        TBuf::msg(b"<a><!-- note --><b/></a>"),
        ParseOptions { keep_comments: true, ..Default::default() },
        &mut NullProbe,
    )
    .unwrap();
    // Comment node + element node under the root.
    let root = doc.root().unwrap();
    let first = doc.first_child_t(root, &mut NullProbe).unwrap();
    assert!(matches!(doc.kind_t(first, &mut NullProbe), aon_xml::NodeKind::Comment));
}

#[test]
fn serializer_handles_empty_and_text_only() {
    let doc = parse(b"<a/>").unwrap();
    assert_eq!(serialize_document(&doc, &mut NullProbe), b"<a/>");
    let doc = parse(b"<a>just text</a>").unwrap();
    assert_eq!(serialize_document(&doc, &mut NullProbe), b"<a>just text</a>");
}

#[test]
fn large_flat_document() {
    let mut s = Vec::from(&b"<list>"[..]);
    for i in 0..5_000 {
        s.extend_from_slice(format!("<i v=\"{i}\">{i}</i>").as_bytes());
    }
    s.extend_from_slice(b"</list>");
    let doc = parse(&s).unwrap();
    assert_eq!(doc.node_count(), 1 + 2 * 5_000); // list + 5000 elems + 5000 texts
    assert_eq!(doc.attr_count(), 5_000);
    // XPath over it still works.
    let xp = aon_xml::xpath::XPath::compile("count(//i)").unwrap();
    let v = xp.eval(&doc, &mut NullProbe).unwrap();
    assert_eq!(v.number_value(&doc, &mut NullProbe), 5_000.0);
}

#[test]
fn whitespace_variants_in_tags() {
    assert!(parse(b"<a  x = \"1\"  />").is_ok());
    assert!(parse(b"<a\n\tx=\"1\"\n/>").is_ok());
    assert!(parse(b"</ a>").is_err());
}

#[test]
fn numeric_character_reference_bounds() {
    assert!(parse(b"<a>&#0;</a>").is_ok()); // NUL decodes (lenient)
    assert!(parse(b"<a>&#x10FFFF;</a>").is_ok());
    assert!(parse(b"<a>&#x110000;</a>").is_err());
    assert!(parse(b"<a>&#xD800;</a>").is_err(), "surrogates are not chars");
}
