//! Property tests for the XML substrate: parser/serializer round trips,
//! UTF-8 validation against the standard library, pattern matching against
//! an independent reference implementation, and no-panic guarantees.

use aon_trace::NullProbe;
use aon_xml::input::TBuf;
use aon_xml::parser::parse_document;
use aon_xml::schema::pattern::Pattern;
use aon_xml::serialize::serialize_document;
use aon_xml::utf8::validate_utf8;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Random document generation (rendered to text, then parsed).
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Node {
    Element { name: String, attrs: Vec<(String, String)>, children: Vec<Node> },
    Text(String),
}

fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,7}"
}

fn arb_text() -> impl Strategy<Value = String> {
    // Includes characters that need escaping.
    "[ a-zA-Z0-9<>&'\"]{0,24}"
}

fn arb_node() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        arb_text().prop_map(Node::Text),
        (arb_name(), prop::collection::vec((arb_name(), arb_text()), 0..3)).prop_map(
            |(name, attrs)| Node::Element { name, attrs: dedup_attrs(attrs), children: vec![] }
        ),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_name(),
            prop::collection::vec((arb_name(), arb_text()), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| Node::Element {
                name,
                attrs: dedup_attrs(attrs),
                children,
            })
    })
}

fn dedup_attrs(attrs: Vec<(String, String)>) -> Vec<(String, String)> {
    let mut seen = std::collections::HashSet::new();
    attrs.into_iter().filter(|(n, _)| seen.insert(n.clone())).collect()
}

fn escape(text: &str, attr: bool) -> String {
    let mut out = String::new();
    for c in text.chars() {
        match c {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            '"' if attr => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

fn render(node: &Node, out: &mut String) {
    match node {
        Node::Text(t) => out.push_str(&escape(t, false)),
        Node::Element { name, attrs, children } => {
            out.push('<');
            out.push_str(name);
            for (an, av) in attrs {
                out.push(' ');
                out.push_str(an);
                out.push_str("=\"");
                out.push_str(&escape(av, true));
                out.push('"');
            }
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    render(c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
}

fn root_wrapped(node: Node) -> String {
    let mut s = String::from("<root>");
    render(&node, &mut s);
    s.push_str("</root>");
    s
}

proptest! {
    #[test]
    fn parse_serialize_reaches_fixed_point(node in arb_node()) {
        let text = root_wrapped(node);
        let doc = parse_document(TBuf::msg(text.as_bytes()), &mut NullProbe).expect("rendered XML parses");
        let once = serialize_document(&doc, &mut NullProbe);
        let redoc = parse_document(TBuf::msg(&once), &mut NullProbe).expect("serialized XML reparses");
        let twice = serialize_document(&redoc, &mut NullProbe);
        prop_assert_eq!(&once, &twice, "serialization must be a fixed point");
        prop_assert_eq!(doc.node_count(), redoc.node_count());
        prop_assert_eq!(doc.attr_count(), redoc.attr_count());
    }

    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = parse_document(TBuf::msg(&bytes), &mut NullProbe);
    }

    #[test]
    fn parser_never_panics_on_markup_like_input(s in "[<>a-z/&;\"= ]{0,200}") {
        let _ = parse_document(TBuf::msg(s.as_bytes()), &mut NullProbe);
    }

    #[test]
    fn utf8_validator_agrees_with_std(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let ours = validate_utf8(TBuf::msg(&bytes), &mut NullProbe);
        let std_ok = std::str::from_utf8(&bytes).is_ok();
        prop_assert_eq!(ours.is_some(), std_ok);
        if let Some(n) = ours {
            prop_assert_eq!(n, std::str::from_utf8(&bytes).unwrap().chars().count());
        }
    }

    #[test]
    fn utf8_validator_accepts_all_strings(s in any::<String>()) {
        let n = validate_utf8(TBuf::msg(s.as_bytes()), &mut NullProbe);
        prop_assert_eq!(n, Some(s.chars().count()));
    }
}

// ---------------------------------------------------------------------
// Pattern engine vs. an independent reference matcher.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Pat {
    Lit(char),
    Class(Vec<char>, bool),
    Concat(Box<Pat>, Box<Pat>),
    Alt(Box<Pat>, Box<Pat>),
    Star(Box<Pat>),
    Plus(Box<Pat>),
    Opt(Box<Pat>),
    Counted(Box<Pat>, u32, u32),
}

fn arb_pat() -> impl Strategy<Value = Pat> {
    let leaf = prop_oneof![
        prop::sample::select(vec!['a', 'b', 'c']).prop_map(Pat::Lit),
        (prop::collection::vec(prop::sample::select(vec!['a', 'b', 'c']), 1..3), any::<bool>())
            .prop_map(|(cs, neg)| Pat::Class(cs, neg)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pat::Concat(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Pat::Alt(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|a| Pat::Star(Box::new(a))),
            inner.clone().prop_map(|a| Pat::Plus(Box::new(a))),
            inner.clone().prop_map(|a| Pat::Opt(Box::new(a))),
            (inner, 0u32..3, 0u32..3).prop_map(|(a, m, extra)| Pat::Counted(
                Box::new(a),
                m,
                m + extra
            )),
        ]
    })
}

fn render_pat(p: &Pat, out: &mut String) {
    match p {
        Pat::Lit(c) => out.push(*c),
        Pat::Class(cs, neg) => {
            out.push('[');
            if *neg {
                out.push('^');
            }
            for c in cs {
                out.push(*c);
            }
            out.push(']');
        }
        Pat::Concat(a, b) => {
            out.push('(');
            render_pat(a, out);
            out.push(')');
            out.push('(');
            render_pat(b, out);
            out.push(')');
        }
        Pat::Alt(a, b) => {
            out.push('(');
            render_pat(a, out);
            out.push('|');
            render_pat(b, out);
            out.push(')');
        }
        Pat::Star(a) => {
            out.push('(');
            render_pat(a, out);
            out.push_str(")*");
        }
        Pat::Plus(a) => {
            out.push('(');
            render_pat(a, out);
            out.push_str(")+");
        }
        Pat::Opt(a) => {
            out.push('(');
            render_pat(a, out);
            out.push_str(")?");
        }
        Pat::Counted(a, min, max) => {
            out.push('(');
            render_pat(a, out);
            out.push(')');
            out.push_str(&format!("{{{min},{max}}}"));
        }
    }
}

/// Reference matcher: set of reachable positions after consuming input.
fn ref_match(p: &Pat, input: &[u8]) -> bool {
    fn step(
        p: &Pat,
        input: &[u8],
        starts: &std::collections::BTreeSet<usize>,
    ) -> std::collections::BTreeSet<usize> {
        let mut ends = std::collections::BTreeSet::new();
        for &s in starts {
            match p {
                Pat::Lit(c) => {
                    if input.get(s) == Some(&(*c as u8)) {
                        ends.insert(s + 1);
                    }
                }
                Pat::Class(cs, neg) => {
                    if let Some(&b) = input.get(s) {
                        let inside = cs.iter().any(|&c| c as u8 == b);
                        if inside != *neg {
                            ends.insert(s + 1);
                        }
                    }
                }
                Pat::Concat(a, b) => {
                    let mid = step(a, input, &[s].into_iter().collect());
                    ends.extend(step(b, input, &mid));
                }
                Pat::Alt(a, b) => {
                    ends.extend(step(a, input, &[s].into_iter().collect()));
                    ends.extend(step(b, input, &[s].into_iter().collect()));
                }
                Pat::Star(a) => {
                    let mut reach: std::collections::BTreeSet<usize> = [s].into_iter().collect();
                    let mut frontier = reach.clone();
                    loop {
                        let next = step(a, input, &frontier);
                        let fresh: std::collections::BTreeSet<usize> =
                            next.difference(&reach).copied().collect();
                        if fresh.is_empty() {
                            break;
                        }
                        reach.extend(fresh.iter().copied());
                        frontier = fresh;
                    }
                    ends.extend(reach);
                }
                Pat::Plus(a) => {
                    let once = step(a, input, &[s].into_iter().collect());
                    let star = Pat::Star(Box::new((**a).clone()));
                    ends.extend(step(&star, input, &once));
                }
                Pat::Opt(a) => {
                    ends.insert(s);
                    ends.extend(step(a, input, &[s].into_iter().collect()));
                }
                Pat::Counted(a, min, max) => {
                    let mut cur: std::collections::BTreeSet<usize> = [s].into_iter().collect();
                    for _ in 0..*min {
                        cur = step(a, input, &cur);
                    }
                    let mut all = cur.clone();
                    for _ in *min..*max {
                        cur = step(a, input, &cur);
                        all.extend(cur.iter().copied());
                    }
                    ends.extend(all);
                }
            }
        }
        ends
    }
    step(p, input, &[0usize].into_iter().collect()).contains(&input.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn pattern_engine_agrees_with_reference(
        pat in arb_pat(),
        input in prop::collection::vec(prop::sample::select(vec![b'a', b'b', b'c']), 0..8),
    ) {
        let mut src = String::new();
        render_pat(&pat, &mut src);
        let compiled = Pattern::compile(&src).expect("rendered pattern compiles");
        let ours = compiled.matches(&input, &mut NullProbe);
        let reference = ref_match(&pat, &input);
        prop_assert_eq!(
            ours,
            reference,
            "pattern {:?} on {:?}",
            src,
            String::from_utf8_lossy(&input)
        );
    }
}
