//! Black-box coverage of every XPath function and coercion through the
//! public API.

use aon_trace::NullProbe;
use aon_xml::input::TBuf;
use aon_xml::parser::parse_document;
use aon_xml::xpath::{XPath, XPathValue};
use aon_xml::Document;

fn doc() -> Document {
    parse_document(
        TBuf::msg(
            br#"<cat id="c1"><item n="a">  one  </item><item n="b">two</item><item n="c">three</item><empty/></cat>"#,
        ),
        &mut NullProbe,
    )
    .expect("fixture parses")
}

fn eval(expr: &str) -> XPathValue {
    XPath::compile(expr)
        .expect("expr compiles")
        .eval(&doc(), &mut NullProbe)
        .expect("expr evaluates")
}

fn num(expr: &str) -> f64 {
    eval(expr).number_value(&doc(), &mut NullProbe)
}

fn boolean(expr: &str) -> bool {
    eval(expr).boolean_value(&doc(), &mut NullProbe)
}

fn string(expr: &str) -> String {
    String::from_utf8(eval(expr).string_value(&doc(), &mut NullProbe)).expect("utf-8")
}

#[test]
fn count_function() {
    assert_eq!(num("count(//item)"), 3.0);
    assert_eq!(num("count(//missing)"), 0.0);
    assert_eq!(num("count(/cat/*)"), 4.0);
}

#[test]
fn string_functions() {
    assert_eq!(string("string(//item[2]/text())"), "two");
    assert_eq!(num("string-length(//item[2]/text())"), 3.0);
    assert_eq!(string("normalize-space(//item[1]/text())"), "one");
    assert_eq!(string("name(//item[3])"), "item");
}

#[test]
fn contains_and_starts_with() {
    assert!(boolean("contains(//item[3], 'hre')"));
    assert!(!boolean("contains(//item[3], 'xyz')"));
    assert!(boolean("starts-with(//item[2], 'tw')"));
    assert!(!boolean("starts-with(//item[2], 'wo')"));
}

#[test]
fn boolean_functions_and_operators() {
    assert!(boolean("true()"));
    assert!(!boolean("false()"));
    assert!(boolean("not(false())"));
    assert!(boolean("true() and not(false()) or false()"));
}

#[test]
fn position_and_last() {
    assert_eq!(string("//item[position() = 2]/@n"), "b");
    assert_eq!(string("//item[last()]/@n"), "c");
    assert_eq!(num("count(//item[position() != 1])"), 2.0);
}

#[test]
fn numeric_coercions_and_comparisons() {
    assert!(boolean("count(//item) > 2"));
    assert!(boolean("count(//item) <= 3"));
    assert!(boolean("string-length(//item[1]/@n) = 1"));
    assert!(boolean("2 < 3 and 3 >= 3"));
    assert!(!boolean("1 != 1"));
}

#[test]
fn node_set_equality_is_existential() {
    // `=` over a node-set is true if ANY member matches.
    assert!(boolean("//item = 'two'"));
    assert!(boolean("//item/@n = 'c'"));
    assert!(!boolean("//item = 'nothing'"));
    // And != is true if any member differs (both can hold at once).
    assert!(boolean("//item != 'two'"));
}

#[test]
fn empty_nodeset_semantics() {
    assert!(!boolean("//missing"));
    assert_eq!(string("string(//missing)"), "");
    assert!(num("string(//missing)").is_nan() || num("string(//missing)") == 0.0);
    assert!(!boolean("//missing = 'x'"));
}

#[test]
fn union_and_wildcards() {
    assert_eq!(num("count(//item | //empty)"), 4.0);
    assert_eq!(num("count(//item | //item)"), 3.0, "unions deduplicate");
    assert_eq!(num("count(/cat/node())"), 4.0);
}

#[test]
fn attribute_values_in_predicates() {
    assert_eq!(string("//item[@n='b']/text()"), "two");
    assert_eq!(num("count(//item[@n])"), 3.0);
    assert_eq!(num("count(//empty[@n])"), 0.0);
}

#[test]
fn concat_function() {
    assert_eq!(string("concat('a', 'b', 'c')"), "abc");
    assert_eq!(string("concat(//item[1]/@n, '-', //item[2]/@n)"), "a-b");
}

#[test]
fn substring_function() {
    assert_eq!(string("substring('12345', 2, 3)"), "234");
    assert_eq!(string("substring('12345', 2)"), "2345");
    // The XPath spec's famous edge cases.
    assert_eq!(string("substring('12345', 1.5, 2.6)"), "234");
    assert_eq!(string("substring('12345', 0, 3)"), "12");
    assert_eq!(string("substring('12345', 10, 3)"), "");
}

#[test]
fn substring_before_after() {
    assert_eq!(string("substring-before('1999/04/01', '/')"), "1999");
    assert_eq!(string("substring-after('1999/04/01', '/')"), "04/01");
    assert_eq!(string("substring-before('abc', 'x')"), "");
    assert_eq!(string("substring-after('abc', 'x')"), "");
}

#[test]
fn translate_function() {
    assert_eq!(string("translate('bar', 'abc', 'ABC')"), "BAr");
    // Characters in `from` without a counterpart in `to` are deleted.
    assert_eq!(string("translate('--aaa--', 'abc-', 'ABC')"), "AAA");
}
