//! Characterize one (platform × workload) cell — the paper's §3
//! methodology in one command: run the workload on the simulated machine
//! and print the VTune-style counter report.
//!
//! Run: `cargo run --release --example characterize -- 2LPx SV`
//! Platforms: 1CPm 2CPm 1LPx 2LPx 2PPx
//! Workloads: FR CBR SV netperf netperf-loopback

use aon::core::experiment::ExperimentConfig;
use aon::core::workload::WorkloadKind;
use aon::server::corpus::Corpus;
use aon::sim::config::Platform;
use aon::sim::convert::ratio;
use aon::sim::machine::Machine;
use aon::sim::stats::MachineStats;

fn parse_platform(s: &str) -> Option<Platform> {
    Platform::ALL.into_iter().find(|p| p.notation().eq_ignore_ascii_case(s))
}

fn parse_workload(s: &str) -> Option<WorkloadKind> {
    WorkloadKind::ALL.into_iter().find(|w| w.label().eq_ignore_ascii_case(s))
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let platform = args.get(1).and_then(|s| parse_platform(s)).unwrap_or(Platform::TwoCorePentiumM);
    let workload = args.get(2).and_then(|s| parse_workload(s)).unwrap_or(WorkloadKind::Cbr);

    let cfg = ExperimentConfig::default();
    eprintln!(
        "measuring {workload} on {platform} ({} Mcycle window)...",
        cfg.measure_cycles / 1_000_000
    );
    // Run the cell by hand (instead of run_cell) to keep the machine for
    // its sampling profile.
    let corpus = Corpus::generate(cfg.corpus_seed, cfg.corpus_variants);
    let mut machine = Machine::new(platform.config());
    workload.build(&mut machine, &corpus);
    machine.run(cfg.warmup_cycles);
    machine.reset_counters();
    let out = machine.run(cfg.warmup_cycles + cfg.measure_cycles);
    let stats = MachineStats::collect(&machine, &out);
    let s = &stats;
    let t = &s.total;

    println!(
        "=== {workload} on {platform} ({} logical CPUs @ {} MHz) ===",
        s.per_cpu.len(),
        s.cpu_mhz
    );
    println!("simulated window      : {:.1} ms", s.seconds() * 1e3);
    println!("completed work units  : {} ({:.0}/s)", s.completed_units, s.units_per_sec());
    println!("payload throughput    : {:.0} Mbps", s.throughput_mbps());
    println!();
    println!("-- on-chip counters (aggregated) --");
    println!("clockticks            : {}", t.clockticks);
    println!("instructions retired  : {:.0}", t.inst_retired());
    println!("branches retired      : {}", t.branches_retired);
    println!("branch mispredictions : {}", t.branch_mispredicts);
    println!("L1D misses            : {}", t.l1d_misses);
    println!("L2 misses             : {}", t.l2_misses);
    println!("bus transactions      : {}", t.bus_txns);
    println!();
    println!("-- derived metrics (paper §3.3) --");
    println!("CPI                   : {:.2}", t.cpi());
    println!("L2MPI                 : {:.3} %", t.l2mpi_pct());
    println!("BTPI                  : {:.2} %", t.btpi_pct());
    println!("branch frequency      : {:.1} %", t.branch_freq_pct());
    println!("BrMPR                 : {:.2} %", t.brmpr_pct());
    println!();
    println!("-- sampling profile (cycles by trace label) --");
    let mut prof: Vec<(&String, &u64)> = machine.profile().iter().collect();
    prof.sort_by(|a, b| b.1.cmp(a.1));
    let total_prof: u64 = prof.iter().map(|(_, &c)| c).sum();
    for (label, &cycles) in prof.iter().take(8) {
        println!(
            "{:<28}{:>12}  ({:>4.1}%)",
            label,
            cycles,
            ratio(cycles, total_prof.max(1)) * 100.0
        );
    }
    println!();
    println!("-- per logical CPU --");
    for (i, c) in s.per_cpu.iter().enumerate() {
        println!(
            "cpu{i}: retired {:>12.0}  idle {:>5.1}%  mem-stall {:>5.1}%  flush {:>4.1}%",
            c.inst_retired(),
            ratio(c.idle_cycles, c.clockticks.max(1)) * 100.0,
            ratio(c.mem_stall_cycles, c.clockticks.max(1)) * 100.0,
            ratio(c.flush_cycles, c.clockticks.max(1)) * 100.0,
        );
    }
}
