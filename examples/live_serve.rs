//! Live serving end to end: start the real TCP server, speak HTTP/1.1 to
//! it over loopback by hand, then run a short closed-loop benchmark.
//!
//! This is the live counterpart of `examples/xml_gateway.rs` — the same
//! engines (parse, XPath routing, schema validation) behind a real
//! `std::net` socket instead of a replayed trace.
//!
//! Run: `cargo run --release --example live_serve`

use aon::serve::loadgen::{run, LoadgenConfig};
use aon::serve::server::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn main() {
    // 1. Stand the server up on an ephemeral loopback port.
    let server = Server::start(ServeConfig::default()).expect("bind loopback");
    println!("server listening on {}", server.addr());

    // 2. One request by hand: a health check.
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.write_all(b"GET /health HTTP/1.1\r\nHost: aon.local\r\nConnection: close\r\n\r\n")
        .expect("send");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read");
    println!("health check -> {}", response.lines().next().unwrap_or(""));
    assert!(response.starts_with("HTTP/1.1 200"));

    // 3. A malformed request is rejected at the edge, not crashed on.
    let mut s = TcpStream::connect(server.addr()).expect("connect");
    s.write_all(b"POST  HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n").expect("send");
    let mut response = String::new();
    s.read_to_string(&mut response).expect("read");
    println!("empty path -> {}", response.lines().next().unwrap_or(""));
    assert!(response.starts_with("HTTP/1.1 400"));

    // 4. A short closed-loop benchmark over the paper's three use cases.
    let report = run(&LoadgenConfig {
        addr: server.addr(),
        connections: 2,
        duration: Duration::from_millis(500),
        ..LoadgenConfig::default()
    });
    println!(
        "benchmark: {} requests ok, {} failed, {:.0} req/s, p50 {:.0}us, p99 {:.0}us",
        report.requests_ok,
        report.requests_failed,
        report.requests_per_sec(),
        report.latency.p50_us,
        report.latency.p99_us,
    );
    assert_eq!(report.requests_failed, 0, "live loop must be clean");

    // 5. The server kept its own performance counters the whole time:
    // scrape the Prometheus exposition like a monitoring system would.
    let metrics = aon::serve::loadgen::scrape(server.addr(), "/metrics", Duration::from_secs(5))
        .expect("scrape /metrics");
    println!("\nscraped /metrics (selected series):");
    for line in metrics.lines() {
        if line.starts_with("aon_requests_total") || line.starts_with("aon_admin_requests_total") {
            println!("  {line}");
        }
    }
    let samples = aon::obs::scrape::parse_prometheus(&metrics);
    let processed = aon::obs::scrape::sum_samples(&samples, "aon_requests_total", &[]);
    assert!(processed > 0.0, "the benchmark's requests must appear in /metrics");

    // 6. Graceful shutdown: drain and report.
    let stats = server.shutdown();
    println!(
        "shutdown: accepted {}, served {}, protocol errors {}",
        stats.accepted,
        stats.requests_total(),
        stats.protocol_errors(),
    );
    assert_eq!(stats.protocol_errors(), 1, "exactly the hand-sent bad request");
}
