//! Quickstart: the XML substrate as an ordinary library.
//!
//! Parses a SOAP purchase order, evaluates the paper's CBR expression,
//! validates against the XSD, and re-serializes — all natively (the
//! instrumentation probe is a no-op).
//!
//! Run: `cargo run --example quickstart`

use aon::trace::NullProbe;
use aon::xml::input::TBuf;
use aon::xml::parser::parse_document;
use aon::xml::schema::Schema;
use aon::xml::serialize::serialize_node;
use aon::xml::soap::payload_root;
use aon::xml::xpath::XPath;

const MESSAGE: &[u8] = br#"<?xml version="1.0"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/">
  <soap:Body>
    <purchaseOrder id="31" currency="USD">
      <customer>Acme Networks</customer>
      <date>2007-03-14</date>
      <item line="1">
        <sku>AB1234</sku>
        <name>gigabit line card</name>
        <quantity>1</quantity>
        <price>4999.00</price>
      </item>
    </purchaseOrder>
  </soap:Body>
</soap:Envelope>"#;

fn main() {
    let p = &mut NullProbe;

    // 1. Parse.
    let doc = parse_document(TBuf::msg(MESSAGE), p).expect("well-formed XML");
    println!("parsed {} DOM nodes, {} attributes", doc.node_count(), doc.attr_count());

    // 2. Content-based routing: the paper's XPath.
    let xpath = XPath::compile("//quantity/text()").expect("valid XPath");
    let matched = xpath.string_equals(&doc, b"1", p).expect("document has a root");
    println!(
        "CBR: //quantity/text() = '1' is {matched} -> route to {}",
        if matched { "destination endpoint" } else { "error endpoint" }
    );

    // 3. Schema validation.
    let schema = Schema::compile(aon::server::corpus::CORPUS_XSD).expect("valid XSD");
    let payload = payload_root(&doc, p).expect("SOAP body payload");
    let validity = schema.validate_node(&doc, payload, p);
    println!("SV: payload is {}", if validity.is_valid() { "valid" } else { "INVALID" });
    for v in validity.violations() {
        println!("  violation: {:?} at {:?}", v.kind, String::from_utf8_lossy(&v.name));
    }

    // 4. Canonical re-serialization (what the device forwards).
    let mut out = Vec::new();
    serialize_node(&doc, payload, &mut out, p);
    println!("canonicalized payload ({} bytes):", out.len());
    println!("{}", String::from_utf8_lossy(&out[..out.len().min(160)]));
}
