//! The paper's stated purpose: "help architects of AON devices to select
//! from alternative processors with restrictions to use one or two
//! physical CPUs" (§1).
//!
//! Runs all three use cases on every configuration, then prints a
//! recommendation matrix by workload profile.
//!
//! Run: `cargo run --release --example select_processor`

use aon::core::experiment::{run_grid, ExperimentConfig};
use aon::core::metrics::MetricKind;
use aon::core::report::metric_row;
use aon::core::workload::WorkloadKind;
use aon::sim::config::Platform;

fn main() {
    let cfg = ExperimentConfig::default();
    eprintln!("sweeping 3 use cases x 5 configurations (this runs 15 simulations)...");
    let ms = run_grid(&Platform::ALL, &WorkloadKind::SERVER, &cfg, true);

    println!("=== AON throughput by configuration (messages/second) ===");
    println!("{:<8}{:>10}{:>10}{:>10}{:>10}{:>10}", "", "1CPm", "2CPm", "1LPx", "2LPx", "2PPx");
    let mut tput: Vec<(WorkloadKind, [f64; 5])> = Vec::new();
    for w in WorkloadKind::SERVER {
        let mut row = [0.0f64; 5];
        for (i, p) in Platform::ALL.iter().enumerate() {
            row[i] = aon::core::experiment::find(&ms, *p, w)
                .map(|m| m.stats.units_per_sec())
                .unwrap_or(f64::NAN);
        }
        println!(
            "{:<8}{:>10.0}{:>10.0}{:>10.0}{:>10.0}{:>10.0}",
            w.label(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4]
        );
        tput.push((w, row));
    }

    println!("\n=== efficiency view (CPI; lower is better) ===");
    println!("{:<8}{:>10}{:>10}{:>10}{:>10}{:>10}", "", "1CPm", "2CPm", "1LPx", "2LPx", "2PPx");
    for w in WorkloadKind::SERVER {
        let row = metric_row(&ms, w, MetricKind::Cpi);
        println!(
            "{:<8}{:>10.2}{:>10.2}{:>10.2}{:>10.2}{:>10.2}",
            w.label(),
            row[0],
            row[1],
            row[2],
            row[3],
            row[4]
        );
    }

    println!("\n=== recommendations ===");
    for (w, row) in &tput {
        let best = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| Platform::ALL[i])
            .expect("five configs");
        // Best single-processor-unit option (one core / one logical CPU).
        let single = [Platform::OneCorePentiumM, Platform::OneLogicalXeon]
            .into_iter()
            .max_by(|a, b| {
                let va = row[Platform::ALL.iter().position(|p| p == a).expect("in ALL")];
                let vb = row[Platform::ALL.iter().position(|p| p == b).expect("in ALL")];
                va.partial_cmp(&vb).expect("finite")
            })
            .expect("two options");
        println!(
            "{:<4} best overall: {:<5} best single-unit: {}",
            w.label(),
            best.notation(),
            single.notation()
        );
    }
    println!(
        "\n(The paper's conclusion — the dual-core Pentium M provides balanced\n\
         scaling for mixed AON workloads while Hyperthreading scales poorly for\n\
         CPU-intensive XML processing — should be visible in the matrix above.)"
    );
}
