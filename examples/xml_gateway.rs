//! A miniature XML gateway built on the library — the application the
//! paper's AON device runs, usable natively: classify a batch of HTTP
//! POSTed SOAP messages into destination/error queues by content routing
//! and schema validation.
//!
//! Run: `cargo run --example xml_gateway`

use aon::server::corpus::Corpus;
use aon::server::http::{parse_request, Method};
use aon::trace::NullProbe;
use aon::xml::input::TBuf;
use aon::xml::parser::parse_document;
use aon::xml::schema::Schema;
use aon::xml::soap::payload_root;
use aon::xml::xpath::XPath;

#[derive(Default, Debug)]
struct GatewayStats {
    routed: usize,
    error_endpoint: usize,
    rejected_http: usize,
    rejected_xml: usize,
}

fn main() {
    let corpus = Corpus::generate(7, 64);
    let schema = Schema::compile(aon::server::corpus::CORPUS_XSD).expect("schema compiles");
    let route = XPath::compile("//quantity/text()").expect("route expression");
    let p = &mut NullProbe;

    let mut stats = GatewayStats::default();
    for (i, variant) in corpus.variants.iter().enumerate() {
        // HTTP layer.
        let Ok(req) = parse_request(TBuf::msg(&variant.http), p) else {
            stats.rejected_http += 1;
            continue;
        };
        if req.method != Method::Post {
            stats.rejected_http += 1;
            continue;
        }
        let body = TBuf::msg(&variant.http).slice(req.body_start, variant.http.len());

        // XML layer.
        let Ok(doc) = parse_document(body, p) else {
            stats.rejected_xml += 1;
            continue;
        };
        let Ok(payload) = payload_root(&doc, p) else {
            stats.rejected_xml += 1;
            continue;
        };

        // Policy: validate, then content-route.
        let valid = schema.validate_node(&doc, payload, p).is_valid();
        let matched = route.string_equals(&doc, b"1", p).unwrap_or(false);
        if valid && matched {
            stats.routed += 1;
        } else {
            stats.error_endpoint += 1;
        }
        if i < 4 {
            println!(
                "msg {i:>2}: {} bytes, valid={valid} quantity-match={matched} -> {}",
                variant.http.len(),
                if valid && matched { "destination" } else { "error endpoint" }
            );
        }
    }

    println!("\nprocessed {} messages: {stats:?}", corpus.len());
    assert_eq!(
        stats.routed + stats.error_endpoint + stats.rejected_http + stats.rejected_xml,
        corpus.len()
    );
}
