//! Live hardware-counter characterization: drive the real server with
//! per-worker perf counter groups open and tabulate the paper's numbers
//! — per-use-case CPI (Table 4), LLC misses per request (Figure 4), and
//! branch misses per request — measured, next to the paper's predicted
//! single-Pentium-M CPI column.
//!
//! ```text
//! cargo run --release --bin hw-report
//! cargo run --release --bin hw-report -- --duration 5 --connections 8
//! cargo run --release --bin hw-report -- --out BENCH_live.json
//! ```
//!
//! Starts an in-process server with `hw_counters` on, runs the closed
//! loop over all five use cases, then reads the per-use-case event
//! totals straight from the server's `aon_hw_events_total` counters and
//! folds them into `BENCH_live.json` as the `"hw"` section.
//!
//! Probe-and-degrade: when `perf_event_open` is unavailable (container
//! without PMU access, `perf_event_paranoid` too strict), the run still
//! completes and the report still carries an `"hw"` section — backend
//! `"noop"`, the refusal reason, and an empty row table. That is a
//! clean skip (exit 0), so CI can call this unconditionally; a *live*
//! backend that then attributes zero events is a failure (exit 1).

use aon_core::paper;
use aon_core::WorkloadKind;
use aon_serve::loadgen::{run, LoadgenConfig};
use aon_serve::metrics::HwSection;
use aon_serve::server::{ServeConfig, Server};
use aon_server::usecase::UseCase;
use aon_server::ParseMode;
use std::time::Duration;

fn main() {
    let args = parse_args();

    let probe = aon_hw::probe();
    eprintln!(
        "hw-report: backend {}{}",
        probe.backend,
        if probe.reason.is_empty() { String::new() } else { format!(" ({})", probe.reason) }
    );

    let server = Server::start(ServeConfig {
        parse_mode: args.parse_mode,
        hw_counters: true,
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let cfg = LoadgenConfig {
        addr: server.addr(),
        connections: args.connections,
        duration: Duration::from_secs(args.duration_secs),
        use_cases: UseCase::EXTENDED.to_vec(),
        ..LoadgenConfig::default()
    };
    eprintln!(
        "hw-report: {} connections x {}s, all use cases, hw counters on",
        cfg.connections, args.duration_secs
    );
    let mut report = run(&cfg);
    report.parse_mode = Some(args.parse_mode.label().to_string());
    report.stages = server.stage_cells();

    let mut rows = server.hw_rows();
    for row in &mut rows {
        row.predicted_cpi = predicted_cpi(row.use_case);
    }
    report.server = Some(server.shutdown());

    let mut failed = report.requests_failed > 0 || report.requests_ok == 0;
    if failed {
        eprintln!(
            "hw-report: FAILED: load errors ({} ok, {} failed)",
            report.requests_ok, report.requests_failed
        );
    }

    if probe.active() && rows.is_empty() {
        eprintln!("hw-report: FAILED: live perf backend but zero events attributed");
        failed = true;
    }
    if !probe.active() {
        eprintln!("hw-report: noop backend — no PMU access here, table omitted (clean skip)");
    }

    println!(
        "{:<8} {:>10} {:>8} {:>13} {:>8} {:>10} {:>11}",
        "use case", "requests", "cpi", "predicted_cpi", "llc/req", "branch/req", "l1d/req"
    );
    for r in &rows {
        println!(
            "{:<8} {:>10} {:>8.3} {:>13} {:>8.1} {:>10.1} {:>11.1}",
            r.use_case,
            r.requests,
            r.cpi(),
            r.predicted_cpi.map_or("-".to_string(), |v| format!("{v:.2}")),
            r.llc_miss_per_request(),
            r.branch_miss_per_request(),
            aon_trace::num::ratio(r.l1d_miss, r.requests),
        );
    }

    report.hw =
        Some(HwSection { backend: probe.backend.to_string(), reason: probe.reason.clone(), rows });
    let json = report.to_json();
    std::fs::write(&args.out_path, &json).expect("write BENCH_live.json");
    eprintln!(
        "hw-report: {} ok, {:.0} req/s, hw backend {} -> {}",
        report.requests_ok,
        report.requests_per_sec(),
        probe.backend,
        args.out_path
    );
    if failed {
        std::process::exit(1);
    }
}

/// The paper's Table 4 CPI for the single Pentium M platform (the
/// closest analogue of one worker thread on one core), when the paper
/// characterized this workload. DPI and crypto are extensions — no
/// prediction exists for them.
fn predicted_cpi(use_case_label: &str) -> Option<f64> {
    let workload = match use_case_label {
        "FR" => WorkloadKind::Fr,
        "CBR" => WorkloadKind::Cbr,
        "SV" => WorkloadKind::Sv,
        _ => return None,
    };
    paper::table4_cpi(workload).map(|per_platform| per_platform[0])
}

/// Parsed command line.
struct Args {
    duration_secs: u64,
    connections: usize,
    out_path: String,
    parse_mode: ParseMode,
}

fn parse_args() -> Args {
    let mut args = Args {
        duration_secs: 2,
        connections: 4,
        out_path: "BENCH_live.json".to_string(),
        parse_mode: ParseMode::Fast,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match arg.as_str() {
            "--duration" => {
                args.duration_secs = value("--duration")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("--duration: {e}")));
            }
            "--connections" => {
                args.connections = value("--connections")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("--connections: {e}")));
            }
            "--out" => args.out_path = value("--out"),
            "--parse-mode" => {
                let v = value("--parse-mode");
                args.parse_mode = ParseMode::from_str_opt(&v)
                    .unwrap_or_else(|| usage(&format!("--parse-mode: fast|scalar, got {v:?}")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: hw-report [--duration SECS] [--connections N] [--out FILE] \
                     [--parse-mode fast|scalar]"
                );
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    args
}

fn usage(msg: &str) -> ! {
    eprintln!("hw-report: {msg}");
    std::process::exit(2);
}
