//! Netperf-style live benchmark: drive the real TCP server over loopback
//! and write `BENCH_live.json`.
//!
//! By default this starts an in-process [`aon_serve::Server`] on an
//! ephemeral loopback port, runs the closed-loop load generator against
//! it, folds the server's own counters into the report, and exits 1 if
//! any request failed (wrong status, wire error, or I/O error) or the
//! server saw a protocol error — so CI can gate on it.
//!
//! ```text
//! cargo run --release --bin loadgen -- --duration 2
//! cargo run --release --bin loadgen -- --addr 127.0.0.1:8080   # external server
//! cargo run --release --bin loadgen -- --use-case sv --connections 8
//! ```

use aon_serve::loadgen::{run, LoadgenConfig};
use aon_serve::server::{ServeConfig, Server};
use aon_server::usecase::UseCase;
use std::time::Duration;

fn main() {
    let mut duration_secs: u64 = 2;
    let mut connections: usize = 4;
    let mut addr: Option<String> = None;
    let mut use_cases: Vec<UseCase> = Vec::new();
    let mut out_path = "BENCH_live.json".to_string();

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match arg.as_str() {
            "--duration" => {
                duration_secs = value("--duration")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("--duration: {e}")));
            }
            "--connections" => {
                connections = value("--connections")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("--connections: {e}")));
            }
            "--addr" => addr = Some(value("--addr")),
            "--use-case" => use_cases.push(parse_use_case(&value("--use-case"))),
            "--out" => out_path = value("--out"),
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--duration SECS] [--connections N] \
                     [--use-case fr|cbr|sv|dpi|crypto]... [--addr HOST:PORT] [--out FILE]"
                );
                return;
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if use_cases.is_empty() {
        use_cases = UseCase::ALL.to_vec();
    }

    // In-process server unless --addr points at an external one.
    let server = match &addr {
        Some(_) => None,
        None => Some(Server::start(ServeConfig::default()).expect("bind loopback")),
    };
    let target = match (&server, &addr) {
        (Some(s), _) => s.addr(),
        (None, Some(a)) => a.parse().expect("--addr must be HOST:PORT"),
        (None, None) => unreachable!(),
    };

    let cfg = LoadgenConfig {
        addr: target,
        connections,
        duration: Duration::from_secs(duration_secs),
        use_cases,
        ..LoadgenConfig::default()
    };
    eprintln!(
        "loadgen: {} connections x {}s against {} ({})",
        cfg.connections,
        duration_secs,
        target,
        if server.is_some() { "in-process server" } else { "external server" },
    );

    let mut report = run(&cfg);
    let server_protocol_errors = match server {
        Some(s) => {
            let stats = s.shutdown();
            let errs = stats.protocol_errors();
            report.server = Some(stats);
            errs
        }
        None => 0,
    };

    let json = report.to_json();
    std::fs::write(&out_path, &json).expect("write BENCH_live.json");
    eprintln!(
        "loadgen: {} ok, {} failed, {:.0} req/s, {:.2} Mbps payload, p50 {:.0}us p99 {:.0}us -> {}",
        report.requests_ok,
        report.requests_failed,
        report.requests_per_sec(),
        report.payload_mbps(),
        report.latency.p50_us,
        report.latency.p99_us,
        out_path,
    );

    if report.requests_failed > 0 || report.requests_ok == 0 || server_protocol_errors > 0 {
        eprintln!(
            "loadgen: FAILED (failed={}, ok={}, server protocol errors={})",
            report.requests_failed, report.requests_ok, server_protocol_errors
        );
        std::process::exit(1);
    }
}

fn parse_use_case(s: &str) -> UseCase {
    match s.to_ascii_lowercase().as_str() {
        "fr" => UseCase::Fr,
        "cbr" => UseCase::Cbr,
        "sv" => UseCase::Sv,
        "dpi" => UseCase::Dpi,
        "crypto" => UseCase::Crypto,
        other => usage(&format!("unknown use case {other:?} (fr|cbr|sv|dpi|crypto)")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2);
}
