//! Netperf-style live benchmark: drive the real TCP server over loopback
//! and write `BENCH_live.json`.
//!
//! By default this starts an in-process [`aon_serve::Server`] on an
//! ephemeral loopback port, runs the closed-loop load generator against
//! it, folds the server's own counters and per-stage breakdown into the
//! report, cross-checks a live `/metrics` scrape against the client-side
//! counts, and exits 1 if any request failed (wrong status, wire error,
//! or I/O error), the server saw a protocol error, or the scrape
//! disagreed — so CI can gate on it.
//!
//! ```text
//! cargo run --release --bin loadgen -- --duration 2
//! cargo run --release --bin loadgen -- --addr 127.0.0.1:8080   # external server
//! cargo run --release --bin loadgen -- --use-case sv --connections 8
//! cargo run --release --bin loadgen -- --scrape-metrics metrics.prom
//! cargo run --release --bin loadgen -- --obs-overhead          # off-vs-on p50
//! cargo run --release --bin loadgen -- --profile-overhead      # sampler off-vs-on p50
//! cargo run --release --bin loadgen -- --overload              # goodput curve
//! cargo run --release --bin loadgen -- --overload-smoke        # CI overload gate
//! cargo run --release --bin loadgen -- --trace-smoke           # CI tracing gate
//! ```
//!
//! Tail-sampled tracing is on by default in the in-process server (like a
//! production deployment would run it), so `--obs-overhead` measures the
//! *full* observability plane — counters, histograms, flight ring, and
//! tracing together — against the all-off baseline. `--hw` additionally
//! opens per-worker perf counter groups. `--trace-smoke` drives a mixed
//! load against an FR-only server and proves the tail sampler's retention
//! contract: every governor-shed request's span tree is present in
//! `/trace.jsonl` (`dropped_keep == 0`), every tree is complete, and the
//! trace reads never moved the request totals.

use aon_obs::profiler::ProfilerConfig;
use aon_obs::reqtrace::{ParsedTrace, TraceClass, TraceConfig};
use aon_obs::scrape::{parse_prometheus, sum_samples};
use aon_serve::governor::GovernorConfig;
use aon_serve::loadgen::{run, run_overload, scrape, LoadgenConfig, OverloadConfig};
use aon_serve::metrics::{LiveBenchReport, ObsOverhead, OverloadReport, ProfileOverhead};
use aon_serve::server::{ServeConfig, Server};
use aon_server::usecase::UseCase;
use aon_server::ParseMode;
use aon_trace::num::exact_f64;
use std::time::Duration;

/// Parsed command line.
struct Args {
    duration_secs: u64,
    connections: usize,
    addr: Option<String>,
    use_cases: Vec<UseCase>,
    out_path: String,
    observe: bool,
    scrape_path: Option<String>,
    obs_overhead: bool,
    profile_overhead: bool,
    parse_mode: ParseMode,
    overload: bool,
    overload_smoke: bool,
    governor: bool,
    fr_only: bool,
    p99_budget_ms: Option<u64>,
    queue_budget: Option<u64>,
    trace: bool,
    trace_smoke: bool,
    hw: bool,
}

impl Args {
    /// The governor the in-process server under test runs with.
    fn governor_config(&self) -> GovernorConfig {
        let mut g = GovernorConfig {
            enabled: self.governor,
            fr_only: self.fr_only,
            ..GovernorConfig::default()
        };
        if let Some(ms) = self.p99_budget_ms {
            g.p99_budget = Duration::from_millis(ms);
        }
        if let Some(q) = self.queue_budget {
            g.queue_depth_budget = q;
        }
        g
    }
}

fn main() {
    let args = parse_args();

    // Optional overhead baseline: the same closed loop with the software
    // counters off, before the measured (observed) run.
    let baseline_p50 = if args.obs_overhead {
        eprintln!("loadgen: baseline run (observability off)");
        let outcome = drive(&args, false, false, None);
        if outcome.failed() {
            eprintln!("loadgen: FAILED during the observability-off baseline run");
            std::process::exit(1);
        }
        Some(outcome.report.latency.p50_us)
    } else {
        None
    };

    // Profiler A/B baseline: the full observability plane on, only the
    // worker-state sampler off — isolates the sampler's own cost from
    // everything `--obs-overhead` already measures.
    let profile_baseline_p50 = if args.profile_overhead {
        eprintln!("loadgen: baseline run (observability on, profiler off)");
        let outcome = drive(&args, true, false, None);
        if outcome.failed() {
            eprintln!("loadgen: FAILED during the profiler-off baseline run");
            std::process::exit(1);
        }
        Some(outcome.report.latency.p50_us)
    } else {
        None
    };

    let mut outcome = drive(&args, args.observe, true, args.scrape_path.as_deref());
    if let Some(p50_off) = baseline_p50 {
        outcome.report.obs_overhead = Some(ObsOverhead {
            p50_us_obs_off: p50_off,
            p50_us_obs_on: outcome.report.latency.p50_us,
        });
    }
    if let Some(p50_off) = profile_baseline_p50 {
        outcome.report.profile_overhead = Some(ProfileOverhead {
            p50_us_profile_off: p50_off,
            p50_us_profile_on: outcome.report.latency.p50_us,
        });
    }

    // Overload scenario: its own in-process server (the nominal closed
    // loop above stays an unperturbed baseline), folded into the report.
    let mut overload_failed = false;
    if args.overload || args.overload_smoke {
        let (ov, failed) = overload_scenario(&args);
        outcome.report.overload = Some(ov);
        overload_failed = failed;
    }

    // Tracing retention gate: its own in-process server too.
    let mut trace_smoke_failed = false;
    if args.trace_smoke {
        trace_smoke_failed = trace_smoke_scenario(&args);
    }
    let report = &outcome.report;

    let json = report.to_json();
    std::fs::write(&args.out_path, &json).expect("write BENCH_live.json");
    eprintln!(
        "loadgen: {} ok, {} failed, {:.0} req/s, {:.2} Mbps payload, p50 {:.0}us p99 {:.0}us -> {}",
        report.requests_ok,
        report.requests_failed,
        report.requests_per_sec(),
        report.payload_mbps(),
        report.latency.p50_us,
        report.latency.p99_us,
        args.out_path,
    );
    if let Some(o) = &report.obs_overhead {
        eprintln!(
            "loadgen: obs overhead p50 {:.0}us -> {:.0}us ({:+.2}%)",
            o.p50_us_obs_off,
            o.p50_us_obs_on,
            o.delta_pct()
        );
    }
    if let Some(o) = &report.profile_overhead {
        eprintln!(
            "loadgen: profiler overhead p50 {:.0}us -> {:.0}us ({:+.2}%)",
            o.p50_us_profile_off,
            o.p50_us_profile_on,
            o.delta_pct()
        );
    }

    if outcome.failed() || overload_failed || trace_smoke_failed {
        eprintln!(
            "loadgen: FAILED (failed={}, ok={}, server protocol errors={}, scrape mismatch={}, \
             unexpected sheds={}, overload gate failed={overload_failed}, \
             trace smoke failed={trace_smoke_failed})",
            report.requests_failed,
            report.requests_ok,
            outcome.server_protocol_errors,
            outcome.scrape_mismatch,
            outcome.unexpected_shed,
        );
        std::process::exit(1);
    }
}

/// Run the overload sweep against a dedicated in-process server and, in
/// `--overload-smoke` mode, gate on graceful degradation: an unloaded
/// one-shot point (0.5×) sets the baseline, and at 3× offered load the
/// goodput must hold at least 80% of it with zero wrong-status responses
/// and zero server protocol errors.
fn overload_scenario(args: &Args) -> (OverloadReport, bool) {
    if args.addr.is_some() {
        usage("--overload/--overload-smoke need an in-process server (drop --addr)");
    }
    let server = Server::start(ServeConfig {
        parse_mode: args.parse_mode,
        governor: args.governor_config(),
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let smoke = args.overload_smoke;
    let cfg = OverloadConfig {
        addr: server.addr(),
        threads: args.connections.max(2),
        multipliers: if smoke { vec![0.5, 3.0] } else { vec![0.5, 2.0, 4.0, 6.0, 8.0, 10.0] },
        window: if smoke { Duration::from_secs(2) } else { Duration::from_secs(1) },
        capacity_window: Duration::from_secs(1),
        capacity_connections: args.connections,
        use_cases: args.use_cases.clone(),
        ..OverloadConfig::default()
    };
    eprintln!(
        "loadgen: overload sweep {:?}x capacity ({} arrival threads, governor {})",
        cfg.multipliers,
        cfg.threads,
        if args.governor { "on" } else { "off" },
    );
    let mut report = run_overload(&cfg);
    report.governor_enabled = args.governor;
    let stats = server.shutdown();

    for p in &report.points {
        eprintln!(
            "loadgen: overload {:.1}x: offered {:.0}/s -> goodput {:.0}/s \
             (good {}, shed {}, wrong {}, dropped {}, missed slots {})",
            p.multiplier,
            p.offered_per_sec,
            p.goodput_per_sec(),
            p.good,
            p.shed,
            p.wrong_status,
            p.dropped,
            p.missed_slots,
        );
    }

    let mut failed = false;
    if smoke {
        match (report.points.first(), report.points.get(1)) {
            (Some(base), Some(hot)) if base.good > 0 => {
                let floor = base.goodput_per_sec() * 0.8;
                if hot.goodput_per_sec() < floor {
                    eprintln!(
                        "loadgen: overload smoke FAILED: goodput {:.0}/s at 3x is below 80% \
                         of the unloaded baseline {:.0}/s",
                        hot.goodput_per_sec(),
                        base.goodput_per_sec(),
                    );
                    failed = true;
                }
                if base.wrong_status + hot.wrong_status > 0 {
                    eprintln!(
                        "loadgen: overload smoke FAILED: {} wrong-status responses",
                        base.wrong_status + hot.wrong_status
                    );
                    failed = true;
                }
            }
            _ => {
                eprintln!("loadgen: overload smoke FAILED: no usable unloaded baseline");
                failed = true;
            }
        }
        if stats.protocol_errors() > 0 {
            eprintln!(
                "loadgen: overload smoke FAILED: {} server protocol errors",
                stats.protocol_errors()
            );
            failed = true;
        }
    }
    (report, failed)
}

/// Drive a mixed load against an FR-only server with tracing on and gate
/// on the tail sampler's retention contract. FR-only mode sheds every
/// CBR/SV request, generating a large always-keep population; the gate
/// then proves three things exactly:
///
/// 1. every shed request's span tree is in `/trace.jsonl` (kept-shed
///    count == the server's 503 count, and `dropped_keep == 0`);
/// 2. every retained span tree is structurally complete;
/// 3. reading `/trace.jsonl` never moved a request total (server totals
///    equal the client's request count exactly).
///
/// One connection keeps the shed volume within the trace ring and the
/// scrape size limit — the proof is about exactness, not throughput.
fn trace_smoke_scenario(args: &Args) -> bool {
    if args.addr.is_some() {
        usage("--trace-smoke needs an in-process server (drop --addr)");
    }
    let server = Server::start(ServeConfig {
        parse_mode: args.parse_mode,
        governor: GovernorConfig { fr_only: true, ..args.governor_config() },
        trace: TraceConfig { capacity: 1 << 17, ..TraceConfig::default() },
        ..ServeConfig::default()
    })
    .expect("bind loopback");
    let cfg = LoadgenConfig {
        addr: server.addr(),
        connections: 1,
        duration: Duration::from_secs(args.duration_secs),
        use_cases: args.use_cases.clone(),
        ..LoadgenConfig::default()
    };
    eprintln!(
        "loadgen: trace smoke — {}s mixed load, FR-only governor (CBR/SV shed), tracing on",
        args.duration_secs
    );
    let report = run(&cfg);
    let dump = scrape(server.addr(), "/trace.jsonl", Duration::from_secs(10)).unwrap_or_default();
    let dropped_keep = server.tracer().map_or(u64::MAX, |t| t.dropped_keep());
    let stats = server.shutdown();

    let traces = match ParsedTrace::parse_jsonl(&dump) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("loadgen: trace smoke FAILED: bad /trace.jsonl: {e}");
            return true;
        }
    };
    let mut failed = false;
    if report.requests_ok == 0 {
        eprintln!("loadgen: trace smoke FAILED: no FR request succeeded");
        failed = true;
    }
    if traces.is_empty() {
        eprintln!("loadgen: trace smoke FAILED: /trace.jsonl is empty after load");
        failed = true;
    }
    for t in &traces {
        if let Err(e) = t.tree_complete() {
            eprintln!("loadgen: trace smoke FAILED: incomplete span tree (id {}): {e}", t.id);
            failed = true;
            break;
        }
    }
    let shed_kept = u64::try_from(traces.iter().filter(|t| t.class == TraceClass::Shed).count())
        .expect("trace count fits u64");
    if shed_kept != stats.requests_shed {
        eprintln!(
            "loadgen: trace smoke FAILED: {} shed requests served but {} shed traces kept",
            stats.requests_shed, shed_kept
        );
        failed = true;
    }
    if dropped_keep != 0 {
        eprintln!("loadgen: trace smoke FAILED: {dropped_keep} always-keep traces were evicted");
        failed = true;
    }
    let client_total = report.requests_ok + report.requests_failed + report.errors.shed;
    if stats.requests_total() != client_total {
        eprintln!(
            "loadgen: trace smoke FAILED: server served {} requests but the client drove {} \
             — an admin read perturbed the totals",
            stats.requests_total(),
            client_total
        );
        failed = true;
    }
    if !failed {
        eprintln!(
            "loadgen: trace smoke OK — {} traces kept ({} shed = 100% of {} served sheds), \
             dropped_keep 0, totals exact at {}",
            traces.len(),
            shed_kept,
            stats.requests_shed,
            client_total
        );
    }
    failed
}

/// The result of one measured run plus its gate inputs.
struct RunOutcome {
    report: LiveBenchReport,
    server_protocol_errors: u64,
    scrape_mismatch: bool,
    /// Governor sheds during a run that was not configured to shed:
    /// nominal load must never breach the (generous) default budgets.
    unexpected_shed: bool,
}

impl RunOutcome {
    fn failed(&self) -> bool {
        self.report.requests_failed > 0
            || self.report.requests_ok == 0
            || self.server_protocol_errors > 0
            || self.scrape_mismatch
            || self.unexpected_shed
    }
}

/// Run the closed loop once: in-process server (unless `--addr`), load,
/// optional live `/metrics` scrape + cross-check, stats fold-in.
fn drive(args: &Args, observe: bool, profiler: bool, scrape_path: Option<&str>) -> RunOutcome {
    let server = match &args.addr {
        Some(_) => None,
        None => Some(
            Server::start(ServeConfig {
                observe,
                parse_mode: args.parse_mode,
                governor: args.governor_config(),
                // The baseline (observe=false) run turns the whole plane
                // off — tracing and HW included — so `--obs-overhead`
                // measures everything the observed server pays for.
                hw_counters: observe && args.hw,
                trace: TraceConfig { enabled: observe && args.trace, ..TraceConfig::default() },
                // The profiler lives inside the obs registry, so it only
                // runs when the plane as a whole is on.
                profiler: ProfilerConfig {
                    enabled: observe && profiler,
                    ..ProfilerConfig::default()
                },
                ..ServeConfig::default()
            })
            .expect("bind loopback"),
        ),
    };
    let target = match (&server, &args.addr) {
        (Some(s), _) => s.addr(),
        (None, Some(a)) => a.parse().expect("--addr must be HOST:PORT"),
        (None, None) => unreachable!(),
    };

    let cfg = LoadgenConfig {
        addr: target,
        connections: args.connections,
        duration: Duration::from_secs(args.duration_secs),
        use_cases: args.use_cases.clone(),
        ..LoadgenConfig::default()
    };
    eprintln!(
        "loadgen: {} connections x {}s against {} ({}, observability {}, parse mode {})",
        cfg.connections,
        args.duration_secs,
        target,
        if server.is_some() { "in-process server" } else { "external server" },
        if observe { "on" } else { "off" },
        args.parse_mode.label(),
    );

    let mut report = run(&cfg);
    if server.is_some() {
        report.parse_mode = Some(args.parse_mode.label().to_string());
    }
    let mut scrape_mismatch = false;

    // Scrape the *live* server (before shutdown) so the file matches what
    // an external Prometheus would have collected.
    if let Some(path) = scrape_path {
        if observe {
            let text = scrape_settled(target, report.requests_ok, report.errors.shed);
            // Exact-equality cross-check is only sound against a server
            // this process drove exclusively.
            if server.is_some() && !metrics_agree(&text, report.requests_ok, report.errors.shed) {
                eprintln!(
                    "loadgen: /metrics totals disagree with client counts \
                     (expected {} processed + {} shed)",
                    report.requests_ok, report.errors.shed
                );
                scrape_mismatch = true;
            }
            std::fs::write(path, &text).expect("write scraped metrics");
            eprintln!("loadgen: scraped /metrics -> {path}");
        } else {
            eprintln!("loadgen: --scrape-metrics ignored (observability off)");
        }
    }

    let server_protocol_errors = match server {
        Some(s) => {
            report.stages = s.stage_cells();
            let stats = s.shutdown();
            let errs = stats.protocol_errors();
            report.server = Some(stats);
            errs
        }
        None => 0,
    };
    let unexpected_shed = report.errors.shed > 0 && !args.fr_only;
    RunOutcome { report, server_protocol_errors, scrape_mismatch, unexpected_shed }
}

/// Scrape `/metrics` until the request totals settle at the expected
/// counts (the server records a request just *after* writing its
/// response, so the final few events can trail the client by a
/// scheduling quantum).
fn scrape_settled(addr: std::net::SocketAddr, expected: u64, expected_shed: u64) -> String {
    let timeout = Duration::from_secs(5);
    let mut text = String::new();
    for _ in 0..40 {
        text = scrape(addr, "/metrics", timeout).unwrap_or_default();
        if metrics_agree(&text, expected, expected_shed) {
            return text;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    text
}

/// Does the scraped exposition agree with the client exactly, outcome by
/// outcome — processed (`ok` + `rejected`) and governor-shed?
fn metrics_agree(text: &str, expected: u64, expected_shed: u64) -> bool {
    let samples = parse_prometheus(text);
    let ok = sum_samples(&samples, "aon_requests_total", &[("outcome", "ok")]);
    let rejected = sum_samples(&samples, "aon_requests_total", &[("outcome", "rejected")]);
    let shed = sum_samples(&samples, "aon_requests_total", &[("outcome", "shed")]);
    ok + rejected == exact_f64(expected) && shed == exact_f64(expected_shed)
}

fn parse_args() -> Args {
    let mut args = Args {
        duration_secs: 2,
        connections: 4,
        addr: None,
        use_cases: Vec::new(),
        out_path: "BENCH_live.json".to_string(),
        observe: true,
        scrape_path: None,
        obs_overhead: false,
        profile_overhead: false,
        parse_mode: ParseMode::Fast,
        overload: false,
        overload_smoke: false,
        governor: true,
        fr_only: false,
        p99_budget_ms: None,
        queue_budget: None,
        trace: true,
        trace_smoke: false,
        hw: false,
    };

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| usage(&format!("{name} needs a value")));
        match arg.as_str() {
            "--duration" => {
                args.duration_secs = value("--duration")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("--duration: {e}")));
            }
            "--connections" => {
                args.connections = value("--connections")
                    .parse()
                    .unwrap_or_else(|e| usage(&format!("--connections: {e}")));
            }
            "--addr" => args.addr = Some(value("--addr")),
            "--use-case" => args.use_cases.push(parse_use_case(&value("--use-case"))),
            "--out" => args.out_path = value("--out"),
            "--no-obs" => args.observe = false,
            "--scrape-metrics" => args.scrape_path = Some(value("--scrape-metrics")),
            "--obs-overhead" => args.obs_overhead = true,
            "--profile-overhead" => args.profile_overhead = true,
            "--parse-mode" => {
                let v = value("--parse-mode");
                args.parse_mode = ParseMode::from_str_opt(&v)
                    .unwrap_or_else(|| usage(&format!("--parse-mode: fast|scalar, got {v:?}")));
            }
            "--overload" => args.overload = true,
            "--overload-smoke" => args.overload_smoke = true,
            "--trace-smoke" => args.trace_smoke = true,
            "--no-trace" => args.trace = false,
            "--hw" => args.hw = true,
            "--no-governor" => args.governor = false,
            "--fr-only" => args.fr_only = true,
            "--p99-budget-ms" => {
                args.p99_budget_ms = Some(
                    value("--p99-budget-ms")
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("--p99-budget-ms: {e}"))),
                );
            }
            "--queue-budget" => {
                args.queue_budget = Some(
                    value("--queue-budget")
                        .parse()
                        .unwrap_or_else(|e| usage(&format!("--queue-budget: {e}"))),
                );
            }
            "--help" | "-h" => {
                println!(
                    "usage: loadgen [--duration SECS] [--connections N] \
                     [--use-case fr|cbr|sv|dpi|crypto]... [--addr HOST:PORT] [--out FILE] \
                     [--no-obs] [--scrape-metrics FILE] [--obs-overhead] [--profile-overhead] \
                     [--parse-mode fast|scalar] [--overload] [--overload-smoke] \
                     [--trace-smoke] [--no-trace] [--hw] \
                     [--no-governor] [--fr-only] [--p99-budget-ms N] [--queue-budget N]"
                );
                std::process::exit(0);
            }
            other => usage(&format!("unknown argument {other:?}")),
        }
    }
    if args.use_cases.is_empty() {
        args.use_cases = UseCase::ALL.to_vec();
    }
    if args.obs_overhead {
        if args.addr.is_some() {
            usage("--obs-overhead needs an in-process server (drop --addr)");
        }
        if !args.observe {
            usage("--obs-overhead and --no-obs are mutually exclusive");
        }
    }
    if args.profile_overhead {
        if args.addr.is_some() {
            usage("--profile-overhead needs an in-process server (drop --addr)");
        }
        if !args.observe {
            usage("--profile-overhead and --no-obs are mutually exclusive");
        }
    }
    args
}

fn parse_use_case(s: &str) -> UseCase {
    match s.to_ascii_lowercase().as_str() {
        "fr" => UseCase::Fr,
        "cbr" => UseCase::Cbr,
        "sv" => UseCase::Sv,
        "dpi" => UseCase::Dpi,
        "crypto" => UseCase::Crypto,
        other => usage(&format!("unknown use case {other:?} (fr|cbr|sv|dpi|crypto)")),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(2);
}
