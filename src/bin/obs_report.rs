//! Paper-style live report from a running server's `/metrics` endpoint.
//!
//! Scrapes the Prometheus exposition twice across an interval and derives
//! the numbers the paper tabulates: per-use-case throughput (req/s,
//! payload Mbps), the service-time decomposition by pipeline stage
//! (where do the cycles go for CBR vs SV vs DPI?), the response status
//! mix, edge admission counters (accept-queue high-water mark, dropped
//! connections), bucket-derived service-latency percentiles (p50 / p99 /
//! interpolated p999, from `GET /stats.json`), and — when the server
//! runs with `--hw` on a machine whose PMU opened — the per-use-case
//! hardware-counter characterization (CPI, LLC and branch misses per
//! request) from the `aon_hw_events_total` deltas across the window.
//!
//! ```text
//! cargo run --release --bin obs-report -- --addr 127.0.0.1:8080
//! cargo run --release --bin obs-report -- --addr 127.0.0.1:8080 --interval-ms 5000
//! ```
//!
//! Works against any server started with observability on (the default);
//! exits 2 if the endpoint is unreachable or observability is off.

use aon_obs::scrape::{parse_prometheus, sum_samples, ScrapedSample};
use aon_obs::stage::Stage;
use aon_serve::loadgen::scrape;
use aon_server::usecase::UseCase;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

fn main() {
    let (addr, interval) = parse_args();
    let timeout = Duration::from_secs(5);

    let first = match scrape(addr, "/metrics", timeout) {
        Ok(t) => parse_prometheus(&t),
        Err(e) => fail(&format!("cannot scrape {addr}/metrics: {e:?} (is --no-obs set?)")),
    };
    let started = Instant::now();
    std::thread::sleep(interval);
    let second_text = match scrape(addr, "/metrics", timeout) {
        Ok(t) => t,
        Err(e) => fail(&format!("second scrape failed: {e:?}")),
    };
    let second = parse_prometheus(&second_text);
    let window = started.elapsed().as_secs_f64();

    println!("obs-report: {addr}, {window:.2}s window");
    println!();
    println!("{:<8} {:>10} {:>10} {:>12}", "use case", "req/s", "rej/s", "payload Mbps");
    for uc in UseCase::EXTENDED {
        let label = uc.label();
        let ok_rate =
            delta(&second, &first, "aon_requests_total", &[("use_case", label), ("outcome", "ok")])
                / window;
        let rej_rate = delta(
            &second,
            &first,
            "aon_requests_total",
            &[("use_case", label), ("outcome", "rejected")],
        ) / window;
        let mbps = delta(&second, &first, "aon_payload_bytes_total", &[("use_case", label)]) * 8.0
            / window
            / 1_000_000.0;
        println!("{label:<8} {ok_rate:>10.1} {rej_rate:>10.1} {mbps:>12.3}");
    }

    println!();
    println!("service-time decomposition (share of recorded stage time, this window):");
    print!("{:<8}", "use case");
    for stage in Stage::ALL {
        print!(" {:>9}", stage.label());
    }
    println!();
    for uc in UseCase::EXTENDED {
        let label = uc.label();
        let per_stage: Vec<f64> = Stage::ALL
            .iter()
            .map(|s| {
                delta(
                    &second,
                    &first,
                    "aon_stage_duration_ns_sum",
                    &[("use_case", label), ("stage", s.label())],
                )
            })
            .collect();
        let total: f64 = per_stage.iter().sum();
        print!("{label:<8}");
        for ns in &per_stage {
            if total > 0.0 {
                print!(" {:>8.1}%", ns / total * 100.0);
            } else {
                print!(" {:>9}", "-");
            }
        }
        println!();
    }

    println!();
    println!("response status mix (cumulative):");
    for s in aon_serve::obs::STATUSES {
        let status = s.to_string();
        let n = sum_samples(&second, "aon_http_responses_total", &[("status", status.as_str())]);
        if n > 0.0 {
            println!("  {status}: {n:.0}");
        }
    }
    println!();
    println!("edge admission (cumulative):");
    println!("  accepted: {:.0}", sum_samples(&second, "aon_connections_accepted_total", &[]));
    println!(
        "  dropped (backlog full): {:.0}",
        sum_samples(&second, "aon_connections_dropped_total", &[("reason", "backlog")])
    );
    println!(
        "  rejected (shutdown): {:.0}",
        sum_samples(&second, "aon_connections_dropped_total", &[("reason", "closed")])
    );
    println!(
        "  accept-queue depth high-water mark: {:.0}",
        sum_samples(&second, "aon_accept_queue_depth_hwm", &[])
    );
    println!("  admin scrapes: {:.0}", sum_samples(&second, "aon_admin_requests_total", &[]));

    let stats = scrape(addr, "/stats.json", timeout);

    // Pool shape comes from the server's own /stats.json report — never
    // inferred from configuration (satellite of the profiling plane:
    // saturation and per-worker busy fractions ride along when the
    // profiler is on).
    println!();
    println!("worker pool (/stats.json):");
    match &stats {
        Ok(s) => match object_field(s, "worker_pool", "workers") {
            Some(w) => {
                println!("  workers: {w:.0}");
                if let Some(sat) = object_field(s, "worker_pool", "saturation_permille") {
                    println!("  saturation: {:.1}%", sat / 10.0);
                } else {
                    println!("  saturation: unavailable (profiler off)");
                }
            }
            None => println!("  unavailable (no worker_pool object)"),
        },
        Err(e) => println!("  unavailable: /stats.json scrape failed: {e:?}"),
    }

    println!();
    println!("service latency, bucket-derived (cumulative, all use cases):");
    match &stats {
        Ok(stats) => {
            let us = |key| json_field(stats, key).map_or(0.0, |ns| ns / 1000.0);
            println!(
                "  count {:.0}, p50 {:.0}us, p99 {:.0}us, p999 {:.0}us",
                json_field(stats, "count").unwrap_or(0.0),
                us("p50"),
                us("p99"),
                us("p999"),
            );
        }
        Err(e) => println!("  unavailable: /stats.json scrape failed: {e:?}"),
    }

    println!();
    println!("hardware counters (this window):");
    if second.iter().any(|s| s.name == "aon_hw_events_total") {
        println!(
            "{:<8} {:>10} {:>8} {:>10} {:>12}",
            "use case", "requests", "cpi", "llc/req", "branch/req"
        );
        for uc in UseCase::EXTENDED {
            let label = uc.label();
            let hw = |event| {
                delta(
                    &second,
                    &first,
                    "aon_hw_events_total",
                    &[("use_case", label), ("event", event)],
                )
            };
            let (cycles, instructions) = (hw("cycles"), hw("instructions"));
            let requests = delta(&second, &first, "aon_requests_total", &[("use_case", label)]);
            if instructions == 0.0 || requests == 0.0 {
                continue;
            }
            println!(
                "{label:<8} {requests:>10.0} {:>8.3} {:>10.1} {:>12.1}",
                cycles / instructions,
                hw("llc_miss") / requests,
                hw("branch_miss") / requests,
            );
        }
    } else {
        println!("  absent (server without --hw, or PMU unavailable — see hw-report)");
    }
}

/// Extract a numeric field from the `"service_latency_ns"` object of a
/// `/stats.json` body without a JSON parser: the server emits the exact
/// shape `"key": value` and `service_latency_ns` is the only object in
/// the document containing these keys.
fn json_field(stats: &str, key: &str) -> Option<f64> {
    object_field(stats, "service_latency_ns", key)
}

/// Same shape-based extraction for any named `/stats.json` sub-object
/// (`"object": { "key": value, ... }`).
fn object_field(stats: &str, object: &str, key: &str) -> Option<f64> {
    let obj = stats.split(&format!("\"{object}\"")).nth(1)?;
    let after = obj.split(&format!("\"{key}\":")).nth(1)?;
    let digits: String =
        after.trim_start().chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
    digits.parse().ok()
}

/// Counter increase across the window (clamped at zero: counters are
/// monotonic, so a negative delta means the server restarted between
/// scrapes and the window is meaningless for that series).
fn delta(
    later: &[ScrapedSample],
    earlier: &[ScrapedSample],
    name: &str,
    labels: &[(&str, &str)],
) -> f64 {
    (sum_samples(later, name, labels) - sum_samples(earlier, name, labels)).max(0.0)
}

fn parse_args() -> (SocketAddr, Duration) {
    let mut addr: Option<SocketAddr> = None;
    let mut interval_ms: u64 = 2000;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => {
                addr = Some(
                    value("--addr")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("--addr must be HOST:PORT: {e}"))),
                );
            }
            "--interval-ms" => {
                interval_ms = value("--interval-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--interval-ms: {e}")));
            }
            "--help" | "-h" => {
                println!("usage: obs-report --addr HOST:PORT [--interval-ms MS]");
                std::process::exit(0);
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    match addr {
        Some(a) => (a, Duration::from_millis(interval_ms)),
        None => fail("--addr is required (a running server with observability on)"),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("obs-report: {msg}");
    std::process::exit(2)
}
