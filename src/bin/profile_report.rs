//! Paper-style wall-time decomposition from the continuous worker-state
//! profiler, plus the Little's-law consistency check.
//!
//! Scrapes `/metrics` twice across an interval and derives, from the
//! `aon_worker_state_samples_total` deltas, where the worker pool's wall
//! time went this window — the profiler's statistical answer to the
//! paper's "where do the cycles go?" tables, except measured on wall
//! time across *all* states (including the waits the stage timers cannot
//! see: accept-queue idling and keep-alive read blocking). It then
//! cross-checks the sampler against the request plane with Little's law
//! (`L = λ·W`): arrivals and service times from the request counters and
//! duration histogram, occupancy from the state samples. Agreement is
//! evidence both planes are honest; a gap means one of them lies.
//!
//! ```text
//! cargo run --release --bin profile-report -- --addr 127.0.0.1:8080
//! cargo run --release --bin profile-report -- --self-drive
//! cargo run --release --bin profile-report -- --self-drive --check
//! cargo run --release --bin profile-report -- --self-drive --folded-out profile.folded
//! ```
//!
//! `--self-drive` starts an in-process server (profiler, tracing, and
//! every-trace retention on) and drives a closed loop against it for the
//! measurement window — a one-command demo and the CI gate's harness.
//! `--check` exits 1 unless the law holds within 15% **and** at least
//! one latency exemplar scraped from `/metrics` resolves to a retained
//! trace in `/trace.jsonl` (the exemplar-linkage contract). `--folded-out`
//! writes the `/profile.folded` body for `flamegraph.pl`.

use aon_obs::profiler::{LittlesLaw, WorkerState};
use aon_obs::reqtrace::{ParsedTrace, TraceConfig};
use aon_obs::scrape::{parse_prometheus, sum_samples, ScrapedSample};
use aon_serve::loadgen::{run, scrape, LoadgenConfig};
use aon_serve::server::{ServeConfig, Server};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Little's-law gate tolerance (`--check`): 15% relative gap.
const LAW_TOLERANCE: f64 = 0.15;

struct Args {
    addr: Option<SocketAddr>,
    self_drive: bool,
    check: bool,
    folded_out: Option<String>,
    interval_ms: u64,
    connections: usize,
}

fn main() {
    let args = parse_args();
    let timeout = Duration::from_secs(5);

    // Self-drive: in-process server with the profiler on and *every*
    // trace retained, so each latency observation carries a resolvable
    // exemplar — the linkage `--check` proves.
    let server = if args.self_drive {
        Some(
            Server::start(ServeConfig {
                workers: 4,
                // Keep every trace so each latency observation carries a
                // resolvable exemplar; the ring is sized to hold the tail
                // of the run without outgrowing the admin scrape limit.
                trace: TraceConfig {
                    capacity: 1 << 13,
                    sample_per_million: 1_000_000,
                    ..TraceConfig::default()
                },
                ..ServeConfig::default()
            })
            .expect("bind loopback"),
        )
    } else {
        None
    };
    let addr = match (&server, args.addr) {
        (Some(s), _) => s.addr(),
        (None, Some(a)) => a,
        (None, None) => fail("--addr HOST:PORT or --self-drive is required"),
    };

    // Drive load for warmup + window + slack so both scrapes land inside
    // a busy steady state (Little's law assumes stability).
    let warmup = Duration::from_millis(300);
    let interval = Duration::from_millis(args.interval_ms);
    let load = server.is_some().then(|| {
        let cfg = LoadgenConfig {
            addr,
            connections: args.connections,
            duration: warmup + interval + Duration::from_millis(700),
            ..LoadgenConfig::default()
        };
        std::thread::spawn(move || run(&cfg))
    });
    if load.is_some() {
        std::thread::sleep(warmup);
    }

    let first = match scrape(addr, "/metrics", timeout) {
        Ok(t) => parse_prometheus(&t),
        Err(e) => fail(&format!("cannot scrape {addr}/metrics: {e:?} (is --no-obs set?)")),
    };
    let started = Instant::now();
    std::thread::sleep(interval);
    let second_text = match scrape(addr, "/metrics", timeout) {
        Ok(t) => t,
        Err(e) => fail(&format!("second scrape failed: {e:?}")),
    };
    let second = parse_prometheus(&second_text);
    let window = started.elapsed().as_secs_f64();

    // Let the load drain first, then take the linkage snapshot: with the
    // workload quiesced, each bucket's exemplar is its last observation
    // and the trace ring still holds the run's tail, so the freshest
    // exemplars must resolve.
    if let Some(handle) = load {
        let report = handle.join().expect("load thread");
        eprintln!(
            "profile-report: self-drive load: {} ok, {} failed",
            report.requests_ok, report.requests_failed
        );
    }
    let folded = scrape(addr, "/profile.folded", timeout).unwrap_or_default();
    let stats = scrape(addr, "/stats.json", timeout).unwrap_or_default();
    let final_metrics = match scrape(addr, "/metrics", timeout) {
        Ok(t) => parse_prometheus(&t),
        Err(_) => second.clone(),
    };
    let trace_dump = scrape(addr, "/trace.jsonl", timeout).unwrap_or_default();
    if let Some(s) = server {
        s.shutdown();
    }

    println!("profile-report: {addr}, {window:.2}s window");

    // Wall-time decomposition: state-sample deltas over the window.
    let d = |name: &str, labels: &[(&str, &str)]| {
        (sum_samples(&second, name, labels) - sum_samples(&first, name, labels)).max(0.0)
    };
    let per_state: Vec<(WorkerState, f64)> = WorkerState::ALL
        .iter()
        .map(|&s| (s, d("aon_worker_state_samples_total", &[("state", s.label())])))
        .collect();
    let total: f64 = per_state.iter().map(|(_, n)| n).sum();
    let passes = d("aon_profiler_passes_total", &[]);
    if total == 0.0 || passes == 0.0 {
        println!("profile-report: no profiler samples this window (profiler off or degraded)");
        if args.check {
            std::process::exit(1);
        }
        return;
    }

    println!();
    println!("worker wall-time decomposition (state samples, this window):");
    for (state, n) in &per_state {
        if *n > 0.0 {
            println!("  {:<12} {:>6.1}%", state.label(), n / total * 100.0);
        }
    }

    // Cumulative per-context view from the folded dump (ctx;state count).
    println!();
    println!("folded stacks (cumulative, `flamegraph.pl`-ready):");
    if folded.is_empty() {
        println!("  unavailable (/profile.folded scrape failed or profiler off)");
    } else {
        for line in folded.lines() {
            println!("  {line}");
        }
    }
    if let Some(path) = &args.folded_out {
        std::fs::write(path, &folded).expect("write folded output");
        eprintln!("profile-report: folded stacks -> {path}");
    }

    // Pool shape: the /stats.json summary the dashboards read.
    println!();
    println!("worker pool:");
    match pool_field(&stats, "workers") {
        Some(w) => {
            println!("  workers: {w:.0}");
            if let Some(s) = pool_field(&stats, "saturation_permille") {
                println!("  saturation: {:.1}%", s / 10.0);
            }
        }
        None => println!("  unavailable (/stats.json scrape failed)"),
    }
    println!(
        "  profiler: {:.0} passes, {:.0} overruns, active={:.0}",
        sum_samples(&second, "aon_profiler_passes_total", &[]),
        sum_samples(&second, "aon_profiler_overruns_total", &[]),
        sum_samples(&second, "aon_profiler_active", &[]),
    );

    // Little's law: λ and W from the request plane, L from the state
    // plane's exact time-in-state ledger (the sampled estimate is shown
    // too, but on an oversubscribed host its sleep-based wakeups
    // under-sample busy states — see the profiler's bias caveats).
    let requests = d("aon_request_duration_ns_count", &[]);
    let service_ns = d("aon_request_duration_ns_sum", &[]);
    let in_service: f64 = per_state.iter().filter(|(s, _)| s.in_service()).map(|(_, n)| n).sum();
    let law = LittlesLaw {
        lambda_per_sec: if window > 0.0 { requests / window } else { 0.0 },
        w_secs: if requests > 0.0 { service_ns / requests / 1e9 } else { 0.0 },
        l_observed: d("aon_pool_in_service_ns", &[]) / (window * 1e9),
    };
    println!();
    println!("Little's-law consistency (this window):");
    println!("  lambda = {:.1} req/s, W = {:.1}us", law.lambda_per_sec, law.w_secs * 1e6);
    println!(
        "  L predicted (lambda*W) = {:.4}, L observed (exact ledger) = {:.4}, gap {:.1}% \
         (sampler estimate {:.4})",
        law.l_predicted(),
        law.l_observed,
        law.gap_fraction() * 100.0,
        in_service / passes,
    );

    // Exemplar linkage: exemplars scraped from the latency buckets should
    // name trace ids retained in /trace.jsonl. Dangling ones are possible
    // (a cold bucket's last observation can predate the ring's tail) and
    // reported, but the linkage contract is that fresh exemplars resolve.
    let traces = ParsedTrace::parse_jsonl(&trace_dump).unwrap_or_default();
    let (resolved, dangling) = exemplar_resolution(&final_metrics, &traces);
    println!();
    println!(
        "exemplars: {resolved} resolved to retained traces, {dangling} dangling, \
         {} traces retained",
        traces.len()
    );

    if args.check {
        let mut failed = false;
        if !law.within(LAW_TOLERANCE) {
            eprintln!(
                "profile-report: CHECK FAILED: Little's-law gap {:.1}% exceeds {:.0}%",
                law.gap_fraction() * 100.0,
                LAW_TOLERANCE * 100.0
            );
            failed = true;
        }
        if resolved == 0 {
            eprintln!(
                "profile-report: CHECK FAILED: no latency exemplar resolved to a retained trace"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "profile-report: CHECK OK (law within {:.0}%, exemplars resolve)",
            LAW_TOLERANCE * 100.0
        );
    }
}

/// Count latency-bucket exemplars that resolve (and fail to resolve) to
/// a retained trace id.
fn exemplar_resolution(samples: &[ScrapedSample], traces: &[ParsedTrace]) -> (u64, u64) {
    let (mut resolved, mut dangling) = (0u64, 0u64);
    for s in samples {
        let Some(ex) = &s.exemplar else { continue };
        let Some(id) = ex.label("trace_id").and_then(|v| v.parse::<u64>().ok()) else {
            dangling += 1;
            continue;
        };
        if traces.iter().any(|t| t.id == id) {
            resolved += 1;
        } else {
            dangling += 1;
        }
    }
    (resolved, dangling)
}

/// Extract a numeric field from the `"worker_pool"` object of a
/// `/stats.json` body without a JSON parser (the server emits the exact
/// shape `"key": value`, and `worker_pool` is the only object with these
/// keys).
fn pool_field(stats: &str, key: &str) -> Option<f64> {
    let obj = stats.split("\"worker_pool\"").nth(1)?;
    let after = obj.split(&format!("\"{key}\":")).nth(1)?;
    let digits: String =
        after.trim_start().chars().take_while(|c| c.is_ascii_digit() || *c == '.').collect();
    digits.parse().ok()
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: None,
        self_drive: false,
        check: false,
        folded_out: None,
        interval_ms: 2000,
        connections: 4,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => {
                args.addr = Some(
                    value("--addr")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("--addr must be HOST:PORT: {e}"))),
                );
            }
            "--self-drive" => args.self_drive = true,
            "--check" => args.check = true,
            "--folded-out" => args.folded_out = Some(value("--folded-out")),
            "--interval-ms" => {
                args.interval_ms = value("--interval-ms")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--interval-ms: {e}")));
            }
            "--connections" => {
                args.connections = value("--connections")
                    .parse()
                    .unwrap_or_else(|e| fail(&format!("--connections: {e}")));
            }
            "--help" | "-h" => {
                println!(
                    "usage: profile-report (--addr HOST:PORT | --self-drive) [--check] \
                     [--folded-out FILE] [--interval-ms MS] [--connections N]"
                );
                std::process::exit(0);
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    if args.addr.is_some() && args.self_drive {
        fail("--addr and --self-drive are mutually exclusive");
    }
    args
}

fn fail(msg: &str) -> ! {
    eprintln!("profile-report: {msg}");
    std::process::exit(2)
}
