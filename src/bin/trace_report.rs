//! Critical-path breakdown from a live server's `/trace.jsonl` dump.
//!
//! ```text
//! cargo run --release --bin trace-report -- --addr 127.0.0.1:8080
//! cargo run --release --bin trace-report -- --file trace.jsonl
//! ```
//!
//! Fetches the tail-sampled trace ring (or reads a saved dump),
//! reconstructs every span tree, verifies each is structurally complete,
//! and prints the per-use-case critical path: where a request's wall
//! time went (queue wait before service, each pipeline stage, the
//! response write, and whatever the spans do not cover). This is the
//! per-request view of the same decomposition `obs-report` derives from
//! histograms — except these are *individual* retained requests, biased
//! by design toward the tail (slow / shed / errored traces are always
//! kept), so the table answers "what do the bad requests spend their
//! time on", not "what does the average request do".
//!
//! Exits 2 on fetch/parse problems, 1 on an incomplete span tree (a
//! server-side tracing bug), 0 otherwise — an empty ring is reported,
//! not failed, so the tool is safe against an idle server.

use aon_obs::reqtrace::{ParsedTrace, TraceClass};
use aon_serve::loadgen::scrape;
use aon_trace::num::ratio;
use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::Duration;

/// Span labels attributed as critical-path components, in print order.
/// `queue_wait` precedes the service origin and is reported as its own
/// absolute column; the rest are shares of the root span.
const STAGE_LABELS: [&str; 6] = ["parse", "xpath", "validate", "dpi", "crypto", "write"];

/// Per-use-case aggregate over retained traces.
#[derive(Debug, Default)]
struct UseCaseAgg {
    traces: u64,
    by_class: [u64; 4],
    total_ns: u64,
    queue_wait_ns: u64,
    stage_ns: [u64; 6],
}

fn main() {
    let (source, text) = fetch();
    let traces = match ParsedTrace::parse_jsonl(&text) {
        Ok(t) => t,
        Err(e) => fail(&format!("bad trace dump from {source}: {e}")),
    };
    if traces.is_empty() {
        println!("trace-report: {source}: trace ring is empty (no retained requests yet)");
        return;
    }

    let mut incomplete = 0u64;
    let mut aggs: BTreeMap<String, UseCaseAgg> = BTreeMap::new();
    for t in &traces {
        if let Err(e) = t.tree_complete() {
            eprintln!("trace-report: incomplete span tree (id {}): {e}", t.id);
            incomplete += 1;
            continue;
        }
        let agg = aggs.entry(t.use_case.clone()).or_default();
        agg.traces += 1;
        agg.by_class[t.class.index()] += 1;
        agg.total_ns += t.total_ns;
        for span in &t.spans {
            if span.label == "queue_wait" {
                agg.queue_wait_ns += span.dur_ns;
            } else if let Some(i) = STAGE_LABELS.iter().position(|l| *l == span.label) {
                agg.stage_ns[i] += span.dur_ns;
            }
        }
    }

    let kept_by_class: Vec<String> = TraceClass::ALL
        .iter()
        .map(|c| {
            let n: u64 = aggs.values().map(|a| a.by_class[c.index()]).sum();
            format!("{} {}", n, c.label())
        })
        .collect();
    println!("trace-report: {} retained traces ({})", traces.len(), kept_by_class.join(", "));
    println!();

    print!("{:<8} {:>7} {:>13} {:>14}", "use case", "traces", "avg total us", "avg qwait us");
    for label in STAGE_LABELS {
        print!(" {:>9}", label);
    }
    println!(" {:>9}", "other");
    for (use_case, agg) in &aggs {
        let attributed: u64 = agg.stage_ns.iter().sum();
        let other_ns = agg.total_ns.saturating_sub(attributed);
        print!(
            "{:<8} {:>7} {:>13.1} {:>14.1}",
            use_case,
            agg.traces,
            ratio(agg.total_ns, agg.traces) / 1000.0,
            ratio(agg.queue_wait_ns, agg.traces) / 1000.0,
        );
        for ns in agg.stage_ns {
            print_share(ns, agg.total_ns);
        }
        print_share(other_ns, agg.total_ns);
        println!();
    }

    if incomplete > 0 {
        eprintln!("trace-report: FAILED: {incomplete} incomplete span trees");
        std::process::exit(1);
    }
}

/// One percentage cell; `-` for a use case whose root spans never
/// accumulated time (all-zero clocks cannot yield shares).
fn print_share(part_ns: u64, total_ns: u64) {
    if total_ns > 0 {
        print!(" {:>8.1}%", ratio(part_ns, total_ns) * 100.0);
    } else {
        print!(" {:>9}", "-");
    }
}

/// The dump text plus a human-readable description of where it came from.
fn fetch() -> (String, String) {
    let mut addr: Option<SocketAddr> = None;
    let mut file: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fail(&format!("{name} needs a value")));
        match arg.as_str() {
            "--addr" => {
                addr = Some(
                    value("--addr")
                        .parse()
                        .unwrap_or_else(|e| fail(&format!("--addr must be HOST:PORT: {e}"))),
                );
            }
            "--file" => file = Some(value("--file")),
            "--help" | "-h" => {
                println!("usage: trace-report (--addr HOST:PORT | --file PATH)");
                std::process::exit(0);
            }
            other => fail(&format!("unknown argument {other:?}")),
        }
    }
    match (addr, file) {
        (Some(a), None) => {
            let text = scrape(a, "/trace.jsonl", Duration::from_secs(10)).unwrap_or_else(|e| {
                fail(&format!("cannot fetch {a}/trace.jsonl: {e:?} (tracing off, or --no-obs?)"))
            });
            (format!("{a}/trace.jsonl"), text)
        }
        (None, Some(f)) => {
            let text = std::fs::read_to_string(&f)
                .unwrap_or_else(|e| fail(&format!("cannot read {f}: {e}")));
            (f, text)
        }
        _ => fail("exactly one of --addr or --file is required"),
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("trace-report: {msg}");
    std::process::exit(2)
}
