//! # aon — facade crate
//!
//! Reproduction of *"Dual Processor Performance Characterization for XML
//! Application-Oriented Networking"* (Ding & Waheed, ICPP 2007). This crate
//! re-exports the workspace's public API under one roof and hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).
//!
//! See the individual crates for the subsystems:
//!
//! * [`trace`] (`aon-trace`) — abstract ISA + instrumentation probes.
//! * [`xml`] (`aon-xml`) — XML parser, DOM, XPath subset, XSD validation.
//! * [`sim`] (`aon-sim`) — cycle-approximate dual-processor simulator.
//! * [`net`] (`aon-net`) — simulated network substrate + netperf.
//! * [`server`] (`aon-server`) — the XML AON server application.
//! * [`obs`] (`aon-obs`) — software performance counters: metric
//!   registry, stage spans, flight recorder, Prometheus exposition.
//! * [`serve`] (`aon-serve`) — live TCP serving subsystem + load generator.
//! * [`core`] (`aon-core`) — platforms, experiments, metrics, reporting.

pub use aon_core as core;
pub use aon_net as net;
pub use aon_obs as obs;
pub use aon_serve as serve;
pub use aon_server as server;
pub use aon_sim as sim;
pub use aon_trace as trace;
pub use aon_xml as xml;
