//! Cross-crate integration: workloads on simulated machines — counter
//! consistency, determinism, and platform topology invariants.

use aon::core::experiment::{run_cell, ExperimentConfig};
use aon::core::workload::WorkloadKind;
use aon::sim::config::Platform;
use aon::sim::convert::exact_f64;

fn quick() -> ExperimentConfig {
    ExperimentConfig {
        warmup_cycles: 1_000_000,
        measure_cycles: 5_000_000,
        corpus_seed: 42,
        corpus_variants: 2,
    }
}

#[test]
fn counters_are_internally_consistent() {
    for w in [WorkloadKind::Fr, WorkloadKind::NetperfLoopback] {
        let m = run_cell(Platform::TwoCorePentiumM, w, &quick());
        let t = &m.stats.total;
        // Mispredicts cannot exceed branches; L2 misses cannot exceed L1
        // misses + instruction fetch misses; branches are part of retired.
        assert!(t.branch_mispredicts <= t.branches_retired);
        assert!(exact_f64(t.branches_retired) <= t.inst_retired());
        assert!(t.loads + t.stores <= t.abstract_ops);
        // Clockticks are wall cycles per enabled CPU: identical across CPUs.
        let clk: Vec<u64> = m.stats.per_cpu.iter().map(|c| c.clockticks).collect();
        assert!(clk.windows(2).all(|w| w[0] == w[1]), "per-CPU clockticks differ: {clk:?}");
        // Stall + idle + flush cannot exceed total cycles per CPU.
        for c in &m.stats.per_cpu {
            assert!(c.idle_cycles <= c.clockticks);
        }
    }
}

#[test]
fn all_platform_workload_cells_run_without_deadlock() {
    let cfg = ExperimentConfig {
        warmup_cycles: 500_000,
        measure_cycles: 2_000_000,
        corpus_seed: 42,
        corpus_variants: 2,
    };
    for p in Platform::ALL {
        for w in WorkloadKind::ALL {
            let m = run_cell(p, w, &cfg);
            assert!(m.stats.completed_units > 0, "{w} on {p} completed nothing in the window");
            assert!(m.stats.total.inst_retired() > 0.0);
        }
    }
}

#[test]
fn determinism_holds_across_the_stack() {
    let cfg = quick();
    for w in [WorkloadKind::Sv, WorkloadKind::NetperfE2E] {
        let a = run_cell(Platform::TwoLogicalXeon, w, &cfg);
        let b = run_cell(Platform::TwoLogicalXeon, w, &cfg);
        assert_eq!(a.stats.total, b.stats.total, "{w} must be bit-deterministic");
        assert_eq!(a.stats.completed_units, b.stats.completed_units);
        assert_eq!(a.stats.per_cpu.len(), b.stats.per_cpu.len());
        for (x, y) in a.stats.per_cpu.iter().zip(&b.stats.per_cpu) {
            assert_eq!(x, y);
        }
    }
}

#[test]
fn dual_unit_platforms_use_both_cpus() {
    for p in [Platform::TwoCorePentiumM, Platform::TwoLogicalXeon, Platform::TwoPhysicalXeon] {
        let m = run_cell(p, WorkloadKind::Cbr, &quick());
        assert_eq!(m.stats.per_cpu.len(), 2);
        for (i, c) in m.stats.per_cpu.iter().enumerate() {
            assert!(c.abstract_ops > 0, "{p}: cpu{i} executed nothing");
        }
    }
}

#[test]
fn xeon_reports_more_retired_instructions_than_pm_for_same_work() {
    // Netburst cracking: same messages, more retired instructions.
    let cfg = quick();
    let pm = run_cell(Platform::OneCorePentiumM, WorkloadKind::Sv, &cfg);
    let xe = run_cell(Platform::OneLogicalXeon, WorkloadKind::Sv, &cfg);
    let pm_per_msg = pm.stats.total.inst_retired() / exact_f64(pm.stats.completed_units);
    let xe_per_msg = xe.stats.total.inst_retired() / exact_f64(xe.stats.completed_units);
    assert!(
        xe_per_msg / pm_per_msg > 1.4,
        "Xeon should retire ~1.8x instructions per message: {xe_per_msg:.0} vs {pm_per_msg:.0}"
    );
}
