//! Cross-crate integration: the full message pipeline — corpus generation,
//! HTTP parsing, XML parsing, XPath routing, schema validation, canonical
//! serialization, trace recording — agrees with itself across crates.

use aon::server::corpus::Corpus;
use aon::server::http::{parse_request, Method};
use aon::server::usecase::{record_message_trace, UseCase};
use aon::trace::mix::Mix;
use aon::trace::NullProbe;
use aon::xml::input::TBuf;
use aon::xml::parser::parse_document;
use aon::xml::schema::Schema;
use aon::xml::serialize::serialize_node;
use aon::xml::soap::payload_root;
use aon::xml::xpath::XPath;

#[test]
fn corpus_flags_agree_with_engines_for_many_variants() {
    let corpus = Corpus::generate(2024, 32);
    let schema = Schema::compile(aon::server::corpus::CORPUS_XSD).unwrap();
    let xp = XPath::compile("//quantity/text()").unwrap();
    for v in &corpus.variants {
        let req = parse_request(TBuf::msg(&v.http), &mut NullProbe).expect("valid HTTP");
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.content_length, Some(v.http.len() - v.body_start));

        let body = TBuf::msg(&v.http).slice(req.body_start, v.http.len());
        let doc = parse_document(body, &mut NullProbe).expect("well-formed body");
        let payload = payload_root(&doc, &mut NullProbe).expect("SOAP payload");

        let matched = xp.string_equals(&doc, b"1", &mut NullProbe).unwrap();
        assert_eq!(matched, v.cbr_match, "CBR flag mismatch");

        let valid = schema.validate_node(&doc, payload, &mut NullProbe).is_valid();
        assert_eq!(valid, v.sv_valid, "SV flag mismatch");
    }
}

#[test]
fn canonical_serialization_revalidates() {
    // A valid payload, re-serialized by our engine, must reparse and still
    // validate — the forwarded message is as conformant as the original.
    let corpus = Corpus::generate(99, 8);
    let schema = Schema::compile(aon::server::corpus::CORPUS_XSD).unwrap();
    let mut checked = 0;
    for v in corpus.variants.iter().filter(|v| v.sv_valid) {
        let body = TBuf::msg(&v.http).slice(v.body_start, v.http.len());
        let doc = parse_document(body, &mut NullProbe).unwrap();
        let payload = payload_root(&doc, &mut NullProbe).unwrap();
        let mut out = Vec::new();
        serialize_node(&doc, payload, &mut out, &mut NullProbe);

        let redoc = parse_document(TBuf::msg(&out), &mut NullProbe).expect("canonical reparses");
        let validity = schema.validate(&redoc, &mut NullProbe).unwrap();
        assert!(validity.is_valid(), "canonical form must validate: {:?}", validity.violations());
        checked += 1;
    }
    assert!(checked >= 4, "corpus must contain valid variants");
}

#[test]
fn recorded_traces_have_workload_character() {
    // §3.2: XML content processing is string manipulation — no FP, heavy
    // branching; work grows FR -> CBR -> SV.
    let corpus = Corpus::generate(5, 4);
    let v = &corpus.variants[0];
    let fr = record_message_trace(UseCase::Fr, &corpus, v, 0);
    let cbr = record_message_trace(UseCase::Cbr, &corpus, v, 0);
    let sv = record_message_trace(UseCase::Sv, &corpus, v, 0);

    assert!(fr.stats().ops < cbr.stats().ops);
    assert!(cbr.stats().ops < sv.stats().ops);

    for t in [&fr, &cbr, &sv] {
        let m = Mix::of(t);
        assert!(m.is_normalized());
        assert!(m.branch > 0.15, "AON workloads are branch-rich: {m}");
        assert!(m.load + m.store > 0.05, "and move bytes: {m}");
    }
}

#[test]
fn trace_recording_is_reproducible_across_corpus_rebuilds() {
    let a = Corpus::generate(77, 4);
    let b = Corpus::generate(77, 4);
    for (i, (va, vb)) in a.variants.iter().zip(&b.variants).enumerate() {
        let seed = u32::try_from(i).expect("few variants");
        let ta = record_message_trace(UseCase::Sv, &a, va, seed);
        let tb = record_message_trace(UseCase::Sv, &b, vb, seed);
        assert_eq!(ta.ops(), tb.ops(), "variant {i} must trace identically");
    }
}
