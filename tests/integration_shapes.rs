//! Shape-reproduction integration tests: the paper's headline qualitative
//! claims, checked end-to-end on shortened measurement windows.
//!
//! The full-fidelity grid (default windows, all 20 checks) runs via
//! `cargo run -p aon-bench --release --bin all`; the `full_grid_shapes`
//! test below reruns it in-process and is `#[ignore]`d by default because
//! it takes minutes in debug builds — run it with
//! `cargo test --release -- --ignored`.

use aon::core::experiment::{run_grid, ExperimentConfig};
use aon::core::metrics::{throughput_scaling, MetricKind, ScalingPair};
use aon::core::report::{check_all_shapes, metric_row};
use aon::core::workload::WorkloadKind;
use aon::sim::config::Platform;

fn quick() -> ExperimentConfig {
    ExperimentConfig {
        warmup_cycles: 3_000_000,
        measure_cycles: 12_000_000,
        corpus_seed: 42,
        corpus_variants: 2,
    }
}

#[test]
fn branch_frequency_gap_table5() {
    let cfg = quick();
    let ms = run_grid(
        &[Platform::OneCorePentiumM, Platform::OneLogicalXeon],
        &[WorkloadKind::Sv],
        &cfg,
        true,
    );
    let row = metric_row(&ms, WorkloadKind::Sv, MetricKind::BranchFreq);
    let (pm, xe) = (row[0], row[2]);
    assert!(pm / xe > 1.4, "PM branch fraction ~2x Xeon (Table 5): {pm:.1}% vs {xe:.1}%");
}

#[test]
fn hyperthreading_inflates_brmpr_table6() {
    let cfg = quick();
    let ms = run_grid(
        &[Platform::OneLogicalXeon, Platform::TwoLogicalXeon],
        &[WorkloadKind::Cbr],
        &cfg,
        true,
    );
    let row = metric_row(&ms, WorkloadKind::Cbr, MetricKind::BrMpr);
    assert!(
        row[3] / row[2] >= 1.25,
        "HT must inflate BrMPR >= 25% (Table 6): 1LPx {:.2}% vs 2LPx {:.2}%",
        row[2],
        row[3]
    );
}

#[test]
fn cpi_ordering_table4() {
    let cfg = quick();
    let ms = run_grid(
        &[Platform::OneCorePentiumM, Platform::OneLogicalXeon],
        &[WorkloadKind::Fr, WorkloadKind::Sv],
        &cfg,
        true,
    );
    let fr = metric_row(&ms, WorkloadKind::Fr, MetricKind::Cpi);
    let sv = metric_row(&ms, WorkloadKind::Sv, MetricKind::Cpi);
    assert!(fr[0] > sv[0], "FR CPI > SV CPI on PM: {:.2} vs {:.2}", fr[0], sv[0]);
    assert!(fr[2] > sv[2], "FR CPI > SV CPI on Xeon: {:.2} vs {:.2}", fr[2], sv[2]);
    assert!(sv[2] > sv[0], "Xeon CPI above PM CPI: {:.2} vs {:.2}", sv[2], sv[0]);
}

#[test]
fn dual_package_beats_hyperthreading_fig3() {
    let cfg = quick();
    let ms = run_grid(
        &[Platform::OneLogicalXeon, Platform::TwoLogicalXeon, Platform::TwoPhysicalXeon],
        &[WorkloadKind::Sv],
        &cfg,
        true,
    );
    let ht = throughput_scaling(&ms, ScalingPair::XeonHyperthread, WorkloadKind::Sv).unwrap();
    let pp = throughput_scaling(&ms, ScalingPair::XeonDualPackage, WorkloadKind::Sv).unwrap();
    assert!(
        pp > ht + 0.3,
        "two packages must clearly beat HT for CPU-bound SV: {pp:.2} vs {ht:.2}"
    );
    assert!(pp > 1.6, "dual package scales well: {pp:.2}");
}

#[test]
fn loopback_collapses_across_packages_fig2() {
    let cfg = quick();
    let ms = run_grid(
        &[Platform::OneLogicalXeon, Platform::TwoPhysicalXeon],
        &[WorkloadKind::NetperfLoopback],
        &cfg,
        true,
    );
    let one = metric_row(&ms, WorkloadKind::NetperfLoopback, MetricKind::ThroughputMbps)[2];
    let two = metric_row(&ms, WorkloadKind::NetperfLoopback, MetricKind::ThroughputMbps)[4];
    assert!(
        two < 0.75 * one,
        "cross-package loopback must collapse (Fig 2): {two:.0} vs {one:.0} Mbps"
    );
}

#[test]
#[ignore = "minutes-long: full default-window grid; run with --release -- --ignored"]
fn full_grid_shapes() {
    let cfg = ExperimentConfig::default();
    let ms = run_grid(&Platform::ALL, &WorkloadKind::ALL, &cfg, true);
    let checks = check_all_shapes(&ms);
    let passed = checks.iter().filter(|c| c.pass).count();
    for c in &checks {
        eprintln!("[{}] {} — {}", if c.pass { "PASS" } else { "MISS" }, c.name, c.detail);
    }
    assert!(
        passed * 10 >= checks.len() * 8,
        "at least 80% of the paper's shape claims must reproduce: {passed}/{}",
        checks.len()
    );
}
