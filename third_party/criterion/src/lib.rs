//! Offline stand-in for the [criterion](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! This workspace builds hermetically with no access to crates.io, so the
//! real criterion cannot be vendored. This crate keeps the workspace's
//! `[[bench]]` targets compiling and runnable by reimplementing the subset
//! of the API they use: `Criterion::benchmark_group`, group-level
//! `throughput`/`sample_size`, `bench_function`, `bench_with_input`,
//! `Bencher::iter`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple — warm-up plus a fixed number of
//! timed samples reporting the median iteration time. There is no
//! statistical outlier analysis, HTML report, or baseline comparison.
//! Numbers from this harness are for coarse, same-machine comparisons.

use std::time::{Duration, Instant};

/// Lossy-by-design conversion for reporting: bench timings and element
/// counts sit far below 2^52, where `f64` is exact anyway.
#[allow(clippy::cast_precision_loss)]
fn lossy_f64(v: u128) -> f64 {
    v as f64
}

/// Units for per-iteration throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Iterations process this many abstract elements each.
    Elements(u64),
    /// Iterations process this many bytes each.
    Bytes(u64),
}

/// Benchmark identifier with a function name and a parameter label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Combine a function name and a parameter value into one label.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> Self {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: u32,
    last_median_ns: f64,
}

impl Bencher {
    /// Run `body` repeatedly and record the median per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up: let caches/branch predictors settle and estimate cost.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1_000_000 {
            std::hint::black_box(body());
            warm_iters += 1;
        }
        // Batch so each timed sample is long enough for the clock.
        let batch = warm_iters.clamp(1, 10_000);
        let mut per_iter_ns: Vec<f64> = Vec::with_capacity(self.samples as usize);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(body());
            }
            let ns = lossy_f64(t0.elapsed().as_nanos());
            per_iter_ns.push(ns / f64::from(batch));
        }
        per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.last_median_ns = per_iter_ns[per_iter_ns.len() / 2];
    }
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: u32,
}

impl BenchmarkGroup<'_> {
    /// Set the per-iteration work so results report a rate too.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Number of timed samples per benchmark (default 50).
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = u32::try_from(n.clamp(2, 1_000)).expect("clamped to u32 range");
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) {
        let mut b = Bencher { samples: self.sample_size, last_median_ns: 0.0 };
        body(&mut b);
        self.report(id, b.last_median_ns);
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, last_median_ns: 0.0 };
        body(&mut b, input);
        self.report(&id.to_string(), b.last_median_ns);
    }

    /// Finish the group (exists for API compatibility; reporting is
    /// immediate in this harness).
    pub fn finish(self) {}

    fn report(&mut self, id: &str, median_ns: f64) {
        if self.criterion.quiet {
            return;
        }
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median_ns > 0.0 => {
                format!("  {:>12.1} Kelem/s", lossy_f64(u128::from(n)) / median_ns * 1e6)
            }
            Some(Throughput::Bytes(n)) if median_ns > 0.0 => {
                format!(
                    "  {:>12.1} MiB/s",
                    lossy_f64(u128::from(n)) / median_ns * 1e9 / (1024.0 * 1024.0)
                )
            }
            _ => String::new(),
        };
        println!("{}/{id:<40} {median_ns:>12.1} ns/iter{rate}", self.name);
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    quiet: bool,
}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        let sample_size = 50;
        BenchmarkGroup { criterion: self, name, throughput: None, sample_size }
    }

    /// Run one ungrouped benchmark (top-level `bench_function`).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut body: F) {
        let mut b = Bencher { samples: 50, last_median_ns: 0.0 };
        body(&mut b);
        if !self.quiet {
            println!("{id:<40} {:>12.1} ns/iter", b.last_median_ns);
        }
    }
}

/// Mirrors `criterion_group!`: bundle bench functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Mirrors `criterion_main!`: a `main` that runs the groups. Passing
/// `--test` (as `cargo test --benches` does) skips measurement so test
/// runs stay fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_positive_median() {
        let mut c = Criterion { quiet: true };
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut acc = 0u64;
        g.bench_function("spin", |b| {
            b.iter(|| {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
                acc
            })
        });
        g.finish();
    }

    #[test]
    fn benchmark_id_formats_name_and_parameter() {
        assert_eq!(BenchmarkId::new("run", "2P/2T").to_string(), "run/2P/2T");
    }
}
