//! Offline stand-in for the [proptest](https://crates.io/crates/proptest)
//! crate.
//!
//! This workspace builds in a hermetic environment with no access to
//! crates.io, so the real proptest cannot be vendored. This crate
//! reimplements exactly the subset of proptest's API the workspace's
//! property tests use — `proptest!`, `prop_assert*!`, `prop_oneof!`,
//! strategies over ranges/tuples/collections, `prop_map`,
//! `prop_recursive`, `any::<T>()`, `Just`, `prop::sample::select` — on a
//! deterministic SplitMix64 generator.
//!
//! Differences from the real crate (acceptable for these tests):
//!
//! * **No shrinking.** A failing case reports its generated inputs via the
//!   normal panic message (tests embed the inputs in their assertions).
//! * **Deterministic seeding.** Each test derives its seed from its own
//!   name, so failures reproduce exactly across runs and machines.
//! * Only the strategy combinators listed above are provided.

pub mod strategy;
pub mod test_runner;

/// The `proptest::prelude` equivalent: everything the tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// The `proptest::prop` module path (`prop::collection::vec`,
/// `prop::sample::select`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::strategy::vec;
    }
    /// Sampling strategies.
    pub mod sample {
        pub use crate::strategy::select;
    }
}

/// Define property tests. Mirrors `proptest::proptest!` for the
/// `#[test] fn name(pat in strategy, ...) { body }` form, with an optional
/// leading `#![proptest_config(...)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for case in 0..config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        // audit:allow(panic): expands inside #[test] fns, where panicking reports the failing case
                        panic!("proptest case {case} of {}: {e}", stringify!($name));
                    }
                }
            }
        )*
    };
}

/// `prop_assert!`: fail the current case without aborting the process
/// (the runner turns the error into a panic with case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert_eq!` over [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `prop_assert_ne!` over [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// `prop_oneof!`: choose uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..500 {
            let v = (1u16..500).generate(&mut rng);
            assert!((1..500).contains(&v));
            let (a, b) = (0u8..16, 0u32..100_000).generate(&mut rng);
            assert!(a < 16 && b < 100_000);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = crate::test_runner::TestRng::from_name("vec");
        for _ in 0..200 {
            let v = crate::strategy::vec(0u32..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn union_covers_all_branches() {
        let mut rng = crate::test_runner::TestRng::from_name("union");
        let s = prop_oneof![Just(1u8), Just(4), Just(8)];
        let mut seen = [false; 9];
        for _ in 0..200 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[4] && seen[8]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(u8),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(v) => {
                    assert!(*v < 10, "leaf strategy range is 0..10");
                    1
                }
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = (0u8..10).prop_map(T::Leaf);
        let tree = leaf
            .prop_recursive(3, 24, 4, |inner| crate::strategy::vec(inner, 0..4).prop_map(T::Node));
        let mut rng = crate::test_runner::TestRng::from_name("rec");
        let mut max_depth = 0;
        for _ in 0..300 {
            max_depth = max_depth.max(depth(&tree.generate(&mut rng)));
        }
        assert!(max_depth > 1, "recursion must actually nest");
        assert!(max_depth <= 5, "depth bounded: {max_depth}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), v in crate::strategy::vec(any::<bool>(), 0..4)) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(v.len() < 4, true);
        }
    }
}
