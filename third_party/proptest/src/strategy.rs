//! Value-generation strategies: the subset of proptest's combinator
//! algebra the workspace's tests use.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A source of random values of one type.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `f` receives a strategy for the
    /// recursive positions and returns the branching level. `depth` bounds
    /// the nesting; the remaining two parameters (desired size and
    /// expected branch size in the real API) only shape the distribution
    /// there and are accepted for compatibility.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            // Each level flips between terminating (leaf) and recursing
            // (one application of `f` over the previous level), so depth is
            // bounded by construction and expected depth stays small.
            let branch = f(level).boxed();
            level = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        level
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { gen: Rc::new(move |rng| self.generate(rng)) }
    }
}

/// A type-erased, cheaply-cloneable strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { gen: Rc::clone(&self.gen) }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among several strategies of the same value type
/// (`prop_oneof!`).
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `branches` (must be non-empty).
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one branch");
        Union { branches }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union { branches: self.branches.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.branches.len() as u64);
        self.branches[usize::try_from(i).expect("branch index fits usize")].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                let v = (self.start as u64) + rng.below(span);
                <$t>::try_from(v).expect("value within the requested range")
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u64, *self.end() as u64);
                assert!(lo <= hi, "empty range strategy");
                let v = lo + rng.below(hi - lo + 1);
                <$t>::try_from(v).expect("value within the requested range")
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, usize);

impl Strategy for core::ops::Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for core::ops::RangeInclusive<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        if lo == 0 && hi == u64::MAX {
            return rng.next_u64(); // span would overflow below()
        }
        lo + rng.below(hi - lo + 1)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// `prop::collection::vec`: a vector whose length is drawn from `len` and
/// whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, len }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `prop::sample::select`: choose one of the given values.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "select needs at least one value");
    Select { values }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T: Clone> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.values.len() as u64);
        self.values[usize::try_from(i).expect("index fits usize")].clone()
    }
}

/// Types with a canonical "arbitrary" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` (`proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(core::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Keeping only the type's low bits makes the whole-domain
                // sample; after masking the conversion is exact.
                <$t>::try_from(rng.next_u64() & u64::from(<$t>::MAX))
                    .expect("masked to the target type's range")
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32);

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Bias toward ASCII, but include multibyte and astral characters so
        // UTF-8 handling is exercised.
        match rng.below(4) {
            0 | 1 => char::from(u8::try_from(rng.below(0x80)).expect("ascii")),
            2 => char::from_u32(u32::try_from(0x80 + rng.below(0x7ff - 0x80)).expect("bmp"))
                .unwrap_or('\u{fffd}'),
            _ => {
                let v = u32::try_from(rng.below(0x11_0000)).expect("scalar range");
                char::from_u32(v).unwrap_or('\u{fffd}')
            }
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> String {
        let n = rng.below(24);
        (0..n).map(|_| char::arbitrary(rng)).collect()
    }
}

/// String literals act as regex-shaped generators, e.g.
/// `"[a-z][a-z0-9]{0,7}"`. Supported syntax: literal characters, `[...]`
/// classes with ranges, and `{m,n}` / `{n}` counts on the preceding atom —
/// the subset the workspace's tests use.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

#[derive(Debug, Clone)]
enum PatAtom {
    Lit(char),
    Class(Vec<(char, char)>),
}

fn parse_pattern(pattern: &str) -> Vec<(PatAtom, u32, u32)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        ranges.push((chars[i], chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((chars[i], chars[i]));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {pattern:?}");
                i += 1; // consume ']'
                PatAtom::Class(ranges)
            }
            '\\' => {
                i += 1;
                let c = chars.get(i).copied().expect("escape at end of pattern");
                i += 1;
                PatAtom::Lit(c)
            }
            c => {
                i += 1;
                PatAtom::Lit(c)
            }
        };
        // Optional {m,n} / {n} count.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let close = chars[i..].iter().position(|&c| c == '}').expect("unterminated count") + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => {
                    (a.trim().parse().expect("count"), b.trim().parse().expect("count"))
                }
                None => {
                    let n: u32 = body.trim().parse().expect("count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        atoms.push((atom, lo, hi));
    }
    atoms
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, lo, hi) in parse_pattern(pattern) {
        let reps = u64::from(lo) + rng.below(u64::from(hi) - u64::from(lo) + 1);
        for _ in 0..reps {
            match &atom {
                PatAtom::Lit(c) => out.push(*c),
                PatAtom::Class(ranges) => {
                    let (a, b) = ranges[usize::try_from(rng.below(ranges.len() as u64))
                        .expect("range index fits usize")];
                    let span = u64::from(b as u32) - u64::from(a as u32) + 1;
                    let v = u32::try_from(u64::from(a as u32) + rng.below(span))
                        .expect("class char in scalar range");
                    out.push(char::from_u32(v).unwrap_or(a));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_pattern_generator_obeys_class_and_count() {
        let mut rng = TestRng::from_name("regex");
        for _ in 0..300 {
            let s = "[a-z][a-z0-9]{0,7}".generate(&mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().expect("nonempty").is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn regex_literal_chars_and_specials() {
        let mut rng = TestRng::from_name("regex2");
        for _ in 0..100 {
            let s = "[ a-zA-Z0-9<>&'\"]{0,24}".generate(&mut rng);
            assert!(s.chars().count() <= 24);
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric() || " <>&'\"".contains(c)));
        }
    }
}
