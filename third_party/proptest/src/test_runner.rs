//! Test-case runner support: configuration, deterministic RNG, and the
//! soft-failure error type `prop_assert!` returns.

/// Runner configuration (the subset of `proptest::test_runner::Config`
/// the workspace uses).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real proptest defaults to 256; 64 keeps the hermetic suite
        // fast while still exploring a useful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion (soft failure: the runner reports the case
/// index before panicking).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Build from a rendered assertion message.
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.message)
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        TestCaseError { message: e.to_string() }
    }
}

/// Deterministic SplitMix64 generator seeded from the test's name, so a
/// failing case reproduces identically on every run and machine.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
